//! Cycle-driven flit-level simulation engine.
//!
//! Models input-queued switches with virtual-channel flow control and
//! virtual cut-through switching, per Section VII.A of the paper:
//!
//! * each directed physical channel has `V` virtual channels with
//!   credit-based flow control;
//! * a packet's header spends `header_delay` cycles per hop on routing,
//!   VC allocation, switch allocation and crossbar traversal; body flits
//!   then stream at one flit per cycle (cut-through);
//! * VC allocation grants an output VC only when the downstream buffer has
//!   room for the whole packet (virtual cut-through) and holds it until the
//!   tail flit leaves;
//! * link traversal (including injection overhead) takes `link_delay`
//!   cycles; credits return with `credit_delay`;
//! * each switch serializes at most one flit per output channel per cycle
//!   and one flit per input port per cycle, with round-robin arbitration.
//!
//! Two scheduling cores drive this model ([`crate::config::EngineKind`]):
//! the *dense* reference scans every input VC, output channel and link
//! queue each cycle, while the *event* core (in `crate::event`) only
//! touches units with pending work. Both cores share the state and the
//! mutation helpers in this module, so a cycle's observable effects — and
//! therefore [`RunStats`] — are bit-identical between them (enforced by
//! `tests/sim_equivalence.rs`).

use crate::config::SimConfig;
use crate::inject::{Injector, NEVER};
use crate::routing::{RouteState, SimRouting};
use crate::stats::{RunStats, StatsCollector};
use crate::traffic::TrafficPattern;
use crate::workload::Workload;
use dsn_core::graph::Graph;
use dsn_telemetry::{
    ChannelDesc, PacketTracer, Telemetry, TelemetryConfig, TelemetryReport, TelemetryTopo,
    TraceEvent,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// A flit in flight: packet slab index plus sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Flit {
    /// Index into the [`PacketSlab`] (recycled; see [`Packet::uid`] for
    /// the stable creation-order identity).
    pub packet: u32,
    pub seq: u16,
}

/// Workload-layer identity a packet carries with it. Travels inside the
/// [`Packet`] (and with it across shard boundaries and through fault
/// retries), so flow-completion and stage-release accounting need no
/// shared cross-shard state: the delivering side has everything it needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum PacketTag {
    /// Plain open-loop or closed-batch packet: no workload identity.
    None,
    /// One packet of a multi-packet flow ([`Workload::Flows`] /
    /// [`Workload::Incast`]).
    Flow {
        /// Flow id: `src_host << 32 | per-host flow sequence`.
        id: u64,
        /// Cycle the flow's first packet was enqueued (FCT start).
        start: u64,
        /// Total packets in the flow (FCT completes on the `total`-th).
        total: u32,
    },
    /// One packet of a staged collective ([`Workload::Staged`]): delivery
    /// feeds the destination host's stage-`stage` receive counter.
    Stage {
        /// Stage index within the collective schedule.
        stage: u32,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct Packet {
    /// Stable creation-order id (what the tracer reports); slab indices
    /// are recycled and so unfit for identity.
    pub uid: u32,
    pub src_host: u32,
    pub dest_host: u32,
    pub dest_sw: u32,
    pub created: u64,
    pub route: RouteState,
    pub measured: bool,
    /// How many times this packet has been re-sent after fault drops.
    pub attempt: u32,
    /// Workload-layer identity (flow membership / collective stage).
    pub tag: PacketTag,
}

/// Packet storage with free-list recycling: delivered packets are retired
/// and their slots reused, so memory is bounded by the *peak in-flight*
/// packet count rather than the all-time total.
#[derive(Debug, Default)]
pub(crate) struct PacketSlab {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
    live: u64,
    /// High-water mark of simultaneously live packets.
    pub peak_live: u64,
    /// All-time number of packets created.
    pub total_created: u64,
}

impl PacketSlab {
    /// Store a packet; returns its slab index. Both engines create and
    /// retire packets in the same order, so indices match between them.
    pub fn alloc(&mut self, p: Packet) -> u32 {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(None);
                // Keep the free list able to hold every slot so `retire`
                // never reallocates (zero-alloc steady-state invariant).
                self.free.reserve(self.slots.len() - self.free.len());
                (self.slots.len() - 1) as u32
            }
        };
        debug_assert!(self.slots[id as usize].is_none());
        self.slots[id as usize] = Some(p);
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.total_created += 1;
        id
    }

    /// Store a copy of a packet migrating in from another shard: like
    /// [`Self::alloc`] but without touching `total_created` or `peak_live`
    /// — the packet was created (and counted) by its source shard, and
    /// global peaks are reconstructed by the sharded driver's replay.
    pub fn import(&mut self, p: Packet) -> u32 {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(None);
                self.free.reserve(self.slots.len() - self.free.len());
                (self.slots.len() - 1) as u32
            }
        };
        debug_assert!(self.slots[id as usize].is_none());
        self.slots[id as usize] = Some(p);
        self.live += 1;
        id
    }

    /// Pre-reserve storage for `want` total slots (and a matching free
    /// list) so `alloc`/`import`/`retire` stay allocation-free until the
    /// all-time slot count exceeds `want`.
    pub fn reserve_slots(&mut self, want: usize) {
        if self.slots.capacity() < want {
            self.slots.reserve(want - self.slots.len());
        }
        if self.free.capacity() < want {
            self.free.reserve(want - self.free.len());
        }
    }

    /// Number of slots ever allocated (live + free).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Retire a delivered packet, releasing its slot for reuse.
    pub fn retire(&mut self, id: u32) {
        let gone = self.slots[id as usize].take();
        debug_assert!(gone.is_some(), "double retire of slot {id}");
        self.free.push(id);
        self.live -= 1;
    }

    pub fn get(&self, id: u32) -> &Packet {
        self.slots[id as usize].as_ref().expect("live packet")
    }

    pub fn get_mut(&mut self, id: u32) -> &mut Packet {
        self.slots[id as usize].as_mut().expect("live packet")
    }

    /// Packets currently in flight (created but not delivered).
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Visit every live packet in slab-index order (identical between the
    /// engines, since both create and retire in the same order).
    pub fn for_each_live_mut(&mut self, mut f: impl FnMut(&mut Packet)) {
        for p in self.slots.iter_mut().flatten() {
            f(p);
        }
    }
}

/// Where an allocated packet is headed (decoded view of a packed
/// [`ALLOC_NONE`]-style id; see [`decode_alloc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OutRef {
    /// Network channel + VC.
    Net { channel: usize, vc: u8 },
    /// Ejection port (host-local index at the destination switch).
    Eject { port: usize },
}

// ----------------------------------------------------------------------
// Packed per-input-VC / per-output-VC ids. All per-VC state lives in
// flat arrays indexed by `iv = input * nvc + vc` (the same ids the event
// core schedules on) and `ov = ch_slot[channel] * nvc + vc` (slot-permuted
// storage, see `ch_slot`), so the allocation/arbitration hot loops are
// array scans with no pointer chasing. `with_workload` asserts the network
// is small enough that the packed encodings below cannot collide with
// their sentinels.
// ----------------------------------------------------------------------

/// `input_upstream` sentinel: injection input, no upstream channel.
pub(crate) const NO_UPSTREAM: u32 = u32::MAX;
/// `IvcHot::alloc` sentinel: no allocation held.
pub(crate) const ALLOC_NONE: u32 = u32::MAX;
/// `IvcHot::alloc` flag bit: ejection grant (low bits = host-local port).
pub(crate) const ALLOC_EJECT_BIT: u32 = 1 << 31;
/// Owner half of `ovc_state` sentinel: output VC unowned.
pub(crate) const OWNER_NONE: u32 = u32::MAX;

/// Pack a network allocation: `(channel << 8) | vc`.
#[inline]
pub(crate) fn alloc_net(ch: usize, vc: u8) -> u32 {
    ((ch as u32) << 8) | vc as u32
}

/// Pack an ejection grant.
#[inline]
pub(crate) fn alloc_eject(port: usize) -> u32 {
    ALLOC_EJECT_BIT | port as u32
}

/// Is this packed allocation an ejection grant? (`ALLOC_NONE` has the
/// eject bit set too, so the sentinel must be excluded first.)
#[inline]
pub(crate) fn alloc_is_eject(a: u32) -> bool {
    a != ALLOC_NONE && a & ALLOC_EJECT_BIT != 0
}

/// Decode a packed allocation id.
#[inline]
pub(crate) fn decode_alloc(a: u32) -> Option<OutRef> {
    if a == ALLOC_NONE {
        None
    } else if a & ALLOC_EJECT_BIT != 0 {
        Some(OutRef::Eject {
            port: (a & !ALLOC_EJECT_BIT) as usize,
        })
    } else {
        Some(OutRef::Net {
            channel: (a >> 8) as usize,
            vc: (a & 0xFF) as u8,
        })
    }
}

/// Pack an output-VC owner: `(input << 8) | vc`.
#[inline]
pub(crate) fn owner_pack(i: usize, v: u8) -> u32 {
    ((i as u32) << 8) | v as u32
}

/// Inverse of [`owner_pack`].
#[inline]
pub(crate) fn owner_unpack(o: u32) -> (usize, u8) {
    ((o >> 8) as usize, (o & 0xFF) as u8)
}

// ----------------------------------------------------------------------
// Packed hot per-VC state. The fields the saturated allocation and
// arbitration loops touch together are fused so each gate is one load:
//
// * per output VC, owner and credit count share a u64 (`ovc_state`,
//   owner in the high half) — and because `OWNER_NONE` is `u32::MAX`,
//   "free with at least `need` credits" is a single unsigned compare
//   against `OVC_FREE + need`;
// * per input VC, the header-ready cycle, the packed allocation and the
//   allocated packet form one 16-byte [`IvcHot`] record, so a cache line
//   covers four input VCs instead of striding three parallel arrays.
// ----------------------------------------------------------------------

/// `ovc_state` value of a free output VC with zero credits; the owner
/// field (high 32 bits) holds [`OWNER_NONE`], the maximum owner value.
pub(crate) const OVC_FREE: u64 = (OWNER_NONE as u64) << 32;

/// Pack an output-VC state word from owner and credit count.
#[inline]
pub(crate) fn ovc_pack(owner: u32, credits: u32) -> u64 {
    ((owner as u64) << 32) | credits as u64
}

/// Owner half of an `ovc_state` word.
#[inline]
pub(crate) fn ovc_owner_of(s: u64) -> u32 {
    (s >> 32) as u32
}

/// Credit half of an `ovc_state` word.
#[inline]
pub(crate) fn ovc_credits_of(s: u64) -> u32 {
    s as u32
}

/// Hot per-input-VC record: everything the allocation/ejection gates read
/// besides the buffer itself. 16 bytes, four per cache line.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub(crate) struct IvcHot {
    /// First cycle the head may attempt allocation (header processing
    /// complete); `u64::MAX` = no head armed.
    pub ready: u64,
    /// Packed allocation ([`ALLOC_NONE`] = none held).
    pub alloc: u32,
    /// Slab index of the allocated packet — only meaningful while `alloc`
    /// is held. Identifies the owner even when the buffer is transiently
    /// empty mid-stream (needed by the fault purge).
    pub alloc_pkt: u32,
}

impl IvcHot {
    const IDLE: IvcHot = IvcHot {
        ready: u64::MAX,
        alloc: ALLOC_NONE,
        alloc_pkt: 0,
    };
}

/// Hot per-channel arbitration record (indexed by storage *slot*, see
/// [`Simulator::ch_slot`]): the sendable/owned VC masks and the
/// round-robin pointer that [`Simulator::grant_channel`] reads together.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub(crate) struct ChHot {
    /// Bitmask of output VCs that can send a flit *right now*: bit `v` is
    /// set iff the VC is owned, has at least one credit, and the owner's
    /// input buffer is nonempty. Kept exact by every owner/credit/buffer
    /// transition so [`Simulator::grant_channel`] is a single load for the
    /// (at saturation, overwhelmingly common) credit-starved channels.
    pub ready: u64,
    /// Bitmask of *owned* output VCs (superset of `ready`): the event
    /// engine's channel-deactivation test in O(1).
    pub owned: u64,
    /// Round-robin pointer for switch allocation.
    pub rr: u32,
    _pad: u32,
}

impl ChHot {
    const IDLE: ChHot = ChHot {
        ready: 0,
        owned: 0,
        rr: 0,
        _pad: 0,
    };
}

/// What [`Simulator::try_allocate_vc`] decided for one head packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AllocOutcome {
    /// No output VC currently grantable; retry next cycle.
    Blocked,
    /// Granted the ejection port (destination reached).
    Eject,
    /// Granted a VC on this directed channel.
    Net(usize),
    /// Faulted run only: no structurally usable candidate exists on the
    /// survivor graph (dead/unreachable) — the engine drops the packet.
    Unroutable,
}

/// The simulator: a topology + routing + traffic + configuration, run for a
/// fixed horizon.
pub struct Simulator {
    pub(crate) graph: Arc<Graph>,
    pub(crate) cfg: SimConfig,
    pub(crate) routing: Arc<dyn SimRouting>,

    /// Destination pattern for open workloads (None for closed batches).
    pub(crate) pattern: Option<TrafficPattern>,
    /// Per-host injection schedule + RNG streams (rate 0 for batches).
    pub(crate) injector: Injector,
    /// Closed-batch packets awaiting cycle-0 enqueue (drained once).
    pub(crate) pending_batch: Vec<(usize, usize)>,
    /// Total size of the closed batch (None for open workloads).
    pub(crate) closed_total: Option<u64>,
    /// Flow-level injection source ([`Workload::Flows`] /
    /// [`Workload::Incast`]); replaces the per-cycle [`Injector`] schedule
    /// (which runs at rate 0) when present.
    pub(crate) flows: Option<Box<crate::flow::FlowSource>>,
    /// Stage-dependency tracker for [`Workload::Staged`] collectives.
    pub(crate) staged: Option<Box<crate::flow::StagedState>>,
    /// Hosts whose next collective stage became releasable this cycle
    /// (fed by tail ejections, drained — sorted and deduped — at the next
    /// cycle's injection phase, so the release order is independent of the
    /// engine's ejection order).
    pub(crate) staged_ready: Vec<u32>,
    /// The workload this simulator was built with (kept so the sharded
    /// driver can rebuild identically-seeded per-shard copies). `Closed`
    /// batches store an empty list here — the packets live in
    /// `pending_batch`.
    pub(crate) workload_spec: Workload,

    pub(crate) packets: PacketSlab,

    /// VC stride of the per-VC arrays below: `cfg.vcs.max(1)`. Injection
    /// inputs use only slot 0 of their stride (their extra slots stay
    /// empty), so `iv = input * nvc + vc` is one uniform id space shared
    /// with the event core's scheduling keys.
    pub(crate) nvc: usize,
    /// Input unit count: `channels + hosts` (channel inputs first).
    pub(crate) n_inputs: usize,
    /// Per-input switch the unit belongs to.
    pub(crate) input_node: Vec<u32>,
    /// Per-input upstream directed channel ([`NO_UPSTREAM`] for injection).
    pub(crate) input_upstream: Vec<u32>,
    /// Per-input switch the `iv = input * nvc + vc` unit belongs to
    /// (denormalized from `input_node` so the event core's wake-up walk
    /// avoids the `iv / nvc` division).
    pub(crate) iv_node: Vec<u32>,
    /// Number of network input-VC units (`channels * nvc`); `iv` below
    /// this bound indexes the ring arena, at or above it the injection
    /// queues.
    pub(crate) net_ivs: usize,
    /// Network input buffers: one contiguous fixed-capacity ring arena,
    /// `buffer_flits` [`Flit`] slots per network `iv`. A single allocation
    /// (instead of one `VecDeque` per VC) keeps the saturated send/arrival
    /// path on sequential pages regardless of allocator state — the
    /// scattered per-VC deques were the dominant cache/TLB cost at 256+
    /// switches (DESIGN.md §8).
    pub(crate) net_buf: Vec<Flit>,
    /// Per-network-`iv` ring position, packed `head << 16 | len`.
    pub(crate) net_pos: Vec<u32>,
    /// Injection-input buffers (`iv - net_ivs`), unbounded: the open-loop
    /// injector queues here without credit backpressure.
    pub(crate) inj_buf: Vec<VecDeque<Flit>>,
    /// Per-`iv` hot state (header-ready cycle, packed allocation,
    /// allocated packet).
    pub(crate) ivc: Vec<IvcHot>,
    /// Per-`ov` packed owner + credit state, indexed by *storage slot*
    /// (`ch_slot[ch] * nvc + vc`). See [`OVC_FREE`].
    pub(crate) ovc_state: Vec<u64>,
    /// Per-channel hot arbitration state (ready/owned masks, RR pointer),
    /// indexed by storage slot.
    pub(crate) chv: Vec<ChHot>,
    /// Channel → storage slot for `ovc_state`/`chv`. Iteration everywhere
    /// stays in original channel-id order (observable: channels at one
    /// switch contend for shared input ports in ascending-id order), so
    /// the permutation is a pure memory relayout — bit-identical results.
    /// Default is *switch-major* (channels stably sorted by source switch,
    /// clustering each switch's out-channels that the allocation scan
    /// touches together); `DSN_SOA_LAYOUT=channel` keeps the graph's
    /// edge-major order for A/B timing.
    pub(crate) ch_slot: Vec<u32>,
    /// Per-channel source switch (denormalized from the graph for the
    /// wake-up dirty marks).
    pub(crate) ch_src: Vec<u32>,
    /// Per-switch dirty bitmap for the event core's allocation wake-up
    /// skip: a bit is set when an output VC at that switch transitioned
    /// to grantable (credit count crossed the allocation threshold on a
    /// free VC, or an owner released with enough credits), meaning blocked
    /// heads there are worth re-attempting. Consumed and cleared each
    /// allocation phase; maintained unconditionally (the dense core simply
    /// never reads it).
    pub(crate) node_dirty: Vec<u64>,
    /// Credits required to grant an output VC (packet_flits for virtual
    /// cut-through, 1 for wormhole) — fixed per run.
    pub(crate) alloc_need: u32,

    /// Compiled flat candidate tables (None = dynamic trait-call path,
    /// either by `cfg.routing_tables` or because the scheme is not
    /// tabulable).
    pub(crate) flat: Option<Arc<crate::flat::FlatRouting>>,
    /// Shared routing/rebuild cache, when the caller threads one through
    /// ([`Simulator::with_routing_cache`]) — lets catch-up fault rebuilds
    /// reuse tables across simulations of the same topology.
    pub(crate) routing_cache: Option<Arc<crate::cache::RoutingCache>>,

    /// Per-channel in-flight flits `(arrival_cycle, flit, vc)` — dense
    /// engine only; the event engine schedules arrivals on its wheel.
    pub(crate) links: Vec<VecDeque<(u64, Flit, u8)>>,
    /// In-flight credit returns `(cycle, channel, vc)` — dense engine only.
    pub(crate) credits_in_flight: VecDeque<(u64, usize, u8)>,
    /// Flits sent per directed channel during the measurement window.
    pub(crate) channel_flits: Vec<u64>,
    /// Cycle of the last flit movement (send or ejection).
    pub(crate) last_progress: u64,
    /// Consecutive cycles with packets in flight but no flit movement.
    pub(crate) current_stall: u64,
    /// Longest observed gap with packets in flight but no flit movement.
    pub(crate) longest_stall: u64,
    /// Packets delivered (all time), to know how many are in flight.
    pub(crate) delivered_all_time: u64,
    pub(crate) now: u64,

    pub(crate) stats: StatsCollector,
    pub(crate) tracer: Option<PacketTracer>,
    /// Telemetry sink ([`Telemetry::Off`] unless `cfg.telemetry` is set or
    /// [`Self::with_telemetry`] was called). Hooks live in the shared
    /// mutation helpers below, so both engines feed it identically and
    /// `RunStats` stay bit-identical whether it is on or off.
    pub(crate) telemetry: Telemetry,
    /// Per-cycle scratch: which input units already sent a flit.
    pub(crate) input_used: Vec<bool>,
    /// Per-cycle scratch: which ejection ports are busy.
    pub(crate) eject_used: Vec<bool>,
    /// Indices set in `input_used` this cycle (for O(work) clearing).
    pub(crate) touched_inputs: Vec<u32>,
    /// Indices set in `eject_used` this cycle.
    pub(crate) touched_ejects: Vec<u32>,
    /// Flits currently resident across all input-VC buffers.
    pub(crate) buffered_flits: u64,
    pub(crate) peak_buffered_flits: u64,
    /// Scratch for routing candidate lists.
    pub(crate) cand_scratch: Vec<(usize, u8)>,
    /// Scratch for dynamic escape residues on the flat path.
    pub(crate) esc_scratch: Vec<(usize, u8)>,
    /// Per-phase wall-time breakdown (Some iff `DSN_PHASE_TIMING` was set
    /// at construction); never touches simulation state.
    pub(crate) phase_timers: Option<Box<crate::timing::PhaseTimers>>,
    /// Event-engine bookkeeping (None while running dense).
    pub(crate) ev: Option<Box<crate::event::EventState>>,
    /// Fault-injection state (None when `cfg.fault_plan` is empty).
    pub(crate) fault: Option<Box<crate::fault::FaultRuntime>>,
    /// Shard-membership context when this simulator is one shard of a
    /// sharded run (None otherwise): cross-shard sends and credit returns
    /// divert into mailboxes here instead of the local wheel.
    pub(crate) shard: Option<Box<crate::shard::ShardCtx>>,
    /// The workload RNG seed (kept so the sharded driver can rebuild
    /// identically-seeded per-shard injectors).
    pub(crate) seed: u64,
    /// Open-loop injection rate (packets/cycle/host; 0.0 for closed
    /// batches), kept for the same reason.
    pub(crate) open_rate: f64,
}

/// Above this switch count, `RoutingTables::Flat` auto-degrades to the
/// table-free path for schemes that advertise
/// [`SimRouting::algorithmic`]: the O(ctxs · n²) CSR offsets alone would
/// dwarf the simulator's working set (≈ 67 MB at n = 2046 for the
/// 4-context DSN-V table), while the algorithmic path serves the same
/// candidates from O(n) LUTs. `RoutingTables::Dyn` and explicit
/// `Algorithmic` are unaffected by the threshold.
pub const ALGORITHMIC_AUTO_THRESHOLD: usize = 512;

/// Flat-table selection shared by construction and post-fault refresh.
/// `Algorithmic` skips compilation for algorithmic schemes and falls back
/// to the compiled table for everything else (so the mode is safe to set
/// globally across a mixed-scheme sweep); `Flat` consults the auto
/// threshold.
fn select_flat(
    mode: crate::config::RoutingTables,
    n: usize,
    routing: &dyn SimRouting,
) -> Option<Arc<crate::routing::FlatRouting>> {
    match mode {
        crate::config::RoutingTables::Flat => {
            if routing.algorithmic() && n > ALGORITHMIC_AUTO_THRESHOLD {
                None
            } else {
                routing.compiled_flat()
            }
        }
        crate::config::RoutingTables::Dyn => None,
        crate::config::RoutingTables::Algorithmic => {
            if routing.algorithmic() {
                None
            } else {
                routing.compiled_flat()
            }
        }
    }
}

impl Simulator {
    /// Build a simulator over `graph` with the given routing, traffic
    /// pattern, injection rate (packets per cycle per host) and RNG seed —
    /// the *open-loop* workload of the paper's Figure 10.
    pub fn new(
        graph: Arc<Graph>,
        cfg: SimConfig,
        routing: Arc<dyn SimRouting>,
        pattern: TrafficPattern,
        injection_rate: f64,
        seed: u64,
    ) -> Self {
        Self::with_workload(
            graph,
            cfg,
            routing,
            Workload::Open {
                pattern,
                packets_per_cycle_per_host: injection_rate,
            },
            seed,
        )
    }

    /// Build a simulator with an explicit [`Workload`] (open-loop traffic
    /// or a closed batch such as an all-to-all exchange).
    pub fn with_workload(
        graph: Arc<Graph>,
        cfg: SimConfig,
        routing: Arc<dyn SimRouting>,
        workload: Workload,
        seed: u64,
    ) -> Self {
        cfg.validate();
        let n = graph.node_count();
        let channels = graph.channel_count();
        let hosts = n * cfg.hosts_per_switch;

        let mut flows = None;
        let mut staged = None;
        let mut staged_ready = Vec::new();
        let workload_spec;
        let (pattern, injector, pending_batch, closed_total, open_rate) = match workload {
            Workload::Open {
                pattern,
                packets_per_cycle_per_host,
            } => {
                workload_spec = Workload::Open {
                    pattern: pattern.clone(),
                    packets_per_cycle_per_host,
                };
                (
                    Some(pattern),
                    Injector::new(seed, hosts, packets_per_cycle_per_host),
                    Vec::new(),
                    None,
                    packets_per_cycle_per_host,
                )
            }
            Workload::Closed { packets } => {
                let total = packets.len() as u64;
                // The batch list lives in `pending_batch`; the spec keeps
                // only the variant (the sharded driver re-partitions the
                // batch itself).
                workload_spec = Workload::Closed {
                    packets: Vec::new(),
                };
                (
                    None,
                    Injector::new(seed, hosts, 0.0),
                    packets,
                    Some(total),
                    0.0,
                )
            }
            Workload::Flows {
                pattern,
                sizes,
                arrivals,
            } => {
                flows = Some(Box::new(crate::flow::FlowSource::new_random(
                    seed,
                    hosts,
                    pattern.clone(),
                    sizes.clone(),
                    arrivals.clone(),
                    cfg.packet_flits,
                    cfg.flit_bits as usize,
                )));
                workload_spec = Workload::Flows {
                    pattern,
                    sizes,
                    arrivals,
                };
                (None, Injector::new(seed, hosts, 0.0), Vec::new(), None, 0.0)
            }
            Workload::Incast {
                fanin,
                request_packets,
                wave_period,
            } => {
                flows = Some(Box::new(crate::flow::FlowSource::new_incast(
                    seed,
                    hosts,
                    fanin,
                    request_packets,
                    wave_period,
                    cfg.packet_flits,
                    cfg.flit_bits as usize,
                )));
                workload_spec = Workload::Incast {
                    fanin,
                    request_packets,
                    wave_period,
                };
                (None, Injector::new(seed, hosts, 0.0), Vec::new(), None, 0.0)
            }
            Workload::Staged(spec) => {
                assert!(
                    spec.hosts() <= hosts,
                    "staged collective needs {} hosts, network has {hosts}",
                    spec.hosts()
                );
                let total = spec.total_packets();
                // Stage 0 of every participant is releasable at cycle 0.
                staged_ready = (0..spec.hosts() as u32).collect();
                staged = Some(Box::new(crate::flow::StagedState::new(spec.clone())));
                workload_spec = Workload::Staged(spec);
                (
                    None,
                    Injector::new(seed, hosts, 0.0),
                    Vec::new(),
                    Some(total),
                    0.0,
                )
            }
        };

        let nvc = cfg.vcs.max(1) as usize;
        assert!(nvc <= 64, "ch_ready packs the per-channel VC set in a u64");
        let n_inputs = channels + hosts;
        assert!(
            n_inputs < (1 << 23),
            "network too large for the packed owner/alloc ids"
        );
        let mut input_node = Vec::with_capacity(n_inputs);
        let mut input_upstream = Vec::with_capacity(n_inputs);
        let mut ch_src = Vec::with_capacity(channels);
        for c in 0..channels {
            let (from, to) = graph.channel_endpoints(c);
            input_node.push(to as u32);
            input_upstream.push(c as u32);
            ch_src.push(from as u32);
        }
        for h in 0..hosts {
            input_node.push((h / cfg.hosts_per_switch) as u32);
            input_upstream.push(NO_UPSTREAM);
        }
        let iv_domain = n_inputs * nvc;
        let ov_domain = channels * nvc;
        let mut iv_node = Vec::with_capacity(iv_domain);
        for &node in &input_node {
            iv_node.extend(std::iter::repeat_n(node, nvc));
        }
        // Storage permutation for the per-channel/per-output-VC arrays.
        // The graph numbers channels edge-major (2e, 2e+1 = the two
        // directions of edge e), scattering a switch's out-channels; the
        // default switch-major layout clusters them so the allocation
        // scan's candidate probes share cache lines. `DSN_SOA_LAYOUT`
        // selects the layout for A/B timing; results are identical either
        // way (iteration order never changes).
        let switch_major = !matches!(
            std::env::var("DSN_SOA_LAYOUT").as_deref(),
            Ok("channel") | Ok("edge")
        );
        let mut ch_slot = vec![0u32; channels];
        if switch_major {
            let mut order: Vec<u32> = (0..channels as u32).collect();
            order.sort_by_key(|&c| ch_src[c as usize]);
            for (slot, &c) in order.iter().enumerate() {
                ch_slot[c as usize] = slot as u32;
            }
        } else {
            for (c, s) in ch_slot.iter_mut().enumerate() {
                *s = c as u32;
            }
        }
        let alloc_need = match cfg.switching {
            crate::config::Switching::VirtualCutThrough => cfg.packet_flits as u32,
            crate::config::Switching::Wormhole => 1,
        };

        let stats = StatsCollector::new(&cfg);
        let telemetry = match &cfg.telemetry {
            Some(tc) => Telemetry::on(tc.clone(), telemetry_topo(&graph, &cfg)),
            None => Telemetry::Off,
        };
        let fault = if cfg.fault_plan.is_empty() {
            None
        } else {
            Some(Box::new(crate::fault::FaultRuntime::new(
                &graph,
                &cfg.fault_plan,
            )))
        };
        let flat = select_flat(cfg.routing_tables, n, routing.as_ref());
        // Pre-size every buffer the steady state touches so a saturated
        // measure-phase cycle performs no heap allocation (asserted by
        // `tests/zero_alloc.rs`): network input buffers are bounded by the
        // credit loop at `buffer_flits`, the used-lists by their domains,
        // the routing scratches by the candidate fan-out.
        assert!(
            (1..=u16::MAX as usize).contains(&cfg.buffer_flits),
            "buffer_flits must fit the packed ring position"
        );
        let net_ivs = channels * nvc;
        Simulator {
            links: vec![VecDeque::new(); channels],
            channel_flits: vec![0; channels],
            last_progress: 0,
            current_stall: 0,
            longest_stall: 0,
            delivered_all_time: 0,
            routing,
            pattern,
            injector,
            pending_batch,
            closed_total,
            flows,
            staged,
            staged_ready,
            workload_spec,
            packets: PacketSlab::default(),
            nvc,
            n_inputs,
            input_node,
            input_upstream,
            iv_node,
            net_ivs,
            net_buf: vec![Flit { packet: 0, seq: 0 }; net_ivs * cfg.buffer_flits],
            net_pos: vec![0; net_ivs],
            inj_buf: vec![VecDeque::new(); iv_domain - net_ivs],
            ivc: vec![IvcHot::IDLE; iv_domain],
            ovc_state: vec![OVC_FREE + cfg.buffer_flits as u64; ov_domain],
            chv: vec![ChHot::IDLE; channels],
            ch_slot,
            ch_src,
            node_dirty: vec![0; n.div_ceil(64)],
            alloc_need,
            flat,
            routing_cache: None,
            credits_in_flight: VecDeque::new(),
            now: 0,
            input_used: vec![false; channels + hosts],
            eject_used: vec![false; n * cfg.hosts_per_switch],
            touched_inputs: Vec::with_capacity(n_inputs),
            touched_ejects: Vec::with_capacity(n * cfg.hosts_per_switch),
            buffered_flits: 0,
            peak_buffered_flits: 0,
            cand_scratch: Vec::with_capacity(64),
            esc_scratch: Vec::with_capacity(64),
            phase_timers: crate::timing::env_enabled()
                .then(|| Box::new(crate::timing::PhaseTimers::default())),
            ev: None,
            fault,
            shard: None,
            seed,
            open_rate,
            graph,
            cfg,
            stats,
            tracer: None,
            telemetry,
        }
    }

    /// Thread a shared [`RoutingCache`](crate::cache::RoutingCache) through
    /// this run so post-fault catch-up rebuilds reuse tables computed by
    /// earlier runs on the same topology and mask; returns self for
    /// chaining. Bit-identical to running without a cache (rebuilds are
    /// pure in `(graph, mask, scheme)`).
    pub fn with_routing_cache(mut self, cache: Arc<crate::cache::RoutingCache>) -> Self {
        self.routing_cache = Some(cache);
        self
    }

    /// Recompute `self.flat` for the current `self.routing` (after a fault
    /// rebuild swapped the scheme).
    pub(crate) fn refresh_flat(&mut self) {
        self.flat = select_flat(
            self.cfg.routing_tables,
            self.graph.node_count(),
            self.routing.as_ref(),
        );
    }

    /// Resident bytes of the routing structures this run serves hops from:
    /// the compiled flat CSR table (when one is active) plus the scheme's
    /// own dynamic-path auxiliaries ([`SimRouting::table_bytes`]).
    /// Benchmark accounting — query before `run()` (which consumes self).
    pub fn routing_table_bytes(&self) -> usize {
        self.flat.as_ref().map_or(0, |f| f.table_bytes()) + self.routing.table_bytes()
    }

    /// How many VC slots input `i` actually uses (injection inputs have 1).
    #[inline]
    pub(crate) fn vc_count(&self, i: usize) -> usize {
        if i < self.links.len() {
            self.nvc
        } else {
            1
        }
    }

    /// Enable telemetry recording with the given configuration (windows +
    /// phases); returns self for chaining. Equivalent to setting
    /// `cfg.telemetry` before construction. Call
    /// [`Self::run_with_telemetry`] to get the report back.
    pub fn with_telemetry(mut self, tc: TelemetryConfig) -> Self {
        self.telemetry = Telemetry::on(tc, telemetry_topo(&self.graph, &self.cfg));
        self
    }

    /// Like [`Self::run`] but also returns the telemetry report (`None`
    /// when telemetry was not enabled).
    pub fn run_with_telemetry(mut self) -> (RunStats, Option<TelemetryReport>) {
        self.run_inner();
        let telemetry = std::mem::replace(&mut self.telemetry, Telemetry::Off);
        let final_cycle = self.now;
        let stats = self.finish_stats();
        (stats, telemetry.finish(final_cycle))
    }

    /// Enable packet tracing for every `sample`-th packet; returns self for
    /// chaining. Call [`Self::run_traced`] to get the records back.
    pub fn with_tracer(mut self, sample: u32) -> Self {
        self.tracer = Some(PacketTracer::new(sample));
        self
    }

    /// Like [`Self::run`] but also returns the packet trace (empty when
    /// tracing was not enabled).
    pub fn run_traced(mut self) -> (RunStats, PacketTracer) {
        self.run_inner();
        let tracer_out = self
            .tracer
            .take()
            .unwrap_or_else(|| PacketTracer::new(u32::MAX));
        let stats = self.finish_stats();
        (stats, tracer_out)
    }

    /// Total number of hosts.
    pub fn hosts(&self) -> usize {
        self.graph.node_count() * self.cfg.hosts_per_switch
    }

    pub(crate) fn injection_input(&self, host: usize) -> usize {
        self.graph.channel_count() + host
    }

    /// Run for the configured horizon (open workloads) or until the batch
    /// drains (closed workloads, still bounded by the horizon) and return
    /// the collected statistics.
    pub fn run(mut self) -> RunStats {
        self.run_inner();
        self.finish_stats()
    }

    /// Step the simulation up to (but not past) cycle `target`, clamped to
    /// the configured horizon. Lets a caller bracket a window of cycles —
    /// e.g. the zero-allocation steady-state test brackets the measurement
    /// phase with allocator counter reads. Repeated calls continue where
    /// the previous one stopped; finish with [`Self::finish`] (or keep
    /// advancing to the horizon). Not supported on the sharded engine,
    /// whose cycles advance inside its worker pool.
    pub fn advance_until(&mut self, target: u64) {
        let stop = target.min(self.cfg.total_cycles());
        // Crossing (or landing on) the warmup→measure boundary pre-sizes
        // everything that still grows under saturation, so the measure
        // phase itself runs allocation-free (`presize_steady_state`).
        let warm = self.cfg.warmup_cycles;
        if self.now < warm && stop >= warm {
            self.advance_engine(warm);
            if self.now == warm {
                self.presize_steady_state();
            }
        }
        self.advance_engine(stop);
    }

    fn advance_engine(&mut self, stop: u64) {
        match self.cfg.engine {
            crate::config::EngineKind::Dense => {
                while self.now < stop {
                    self.step_dense();
                    if self.batch_done() {
                        break;
                    }
                }
            }
            crate::config::EngineKind::Event => {
                if self.ev.is_none() {
                    crate::event::prepare(self);
                }
                // `stop` (not the horizon) bounds the event core's idle
                // skip so it cannot overshoot the stepping boundary.
                while self.now < stop {
                    crate::event::step(self, stop);
                    if self.batch_done() {
                        break;
                    }
                }
            }
            crate::config::EngineKind::Sharded => {
                panic!("advance_until is not supported on the sharded engine")
            }
        }
    }

    /// One-shot hook at the warmup→measure boundary: pre-reserve every
    /// structure that still grows in a saturated steady state, so the
    /// measure phase performs zero heap allocations (verified by the
    /// `zero_alloc` integration test). Source queues and the live-packet
    /// population grow roughly linearly under saturation, so end-of-warmup
    /// sizes projected across the horizon (with 50% slack) bound them; the
    /// event wheel's per-slot vectors get hard per-cycle bounds instead.
    /// Pure capacity reservation — observable behavior is unchanged.
    fn presize_steady_state(&mut self) {
        // A host injects at most ~rate × remaining packets more (Bernoulli
        // gaps; 25% slack plus a constant floor dwarfs the binomial
        // variance), so offered load bounds both the packet-slab growth
        // and — worst case, nothing drains — each source queue's depth.
        let remaining = self.cfg.total_cycles().saturating_sub(self.now) as f64;
        let inj_pkts = (self.injector.rate() * remaining * 1.25) as usize + 8;
        self.packets
            .reserve_slots(self.packets.slot_count() + inj_pkts * self.hosts());
        let inj_flits = inj_pkts * self.cfg.packet_flits + 64;
        for q in &mut self.inj_buf {
            let want = q.len() + inj_flits;
            if q.capacity() < want {
                q.reserve(want - q.len());
            }
        }
        let (channels, iv_domain) = (self.links.len(), self.n_inputs * self.nvc);
        let eject_ports = self.eject_used.len();
        if let Some(ev) = self.ev.as_mut() {
            ev.presize_steady_state(channels, iv_domain, eject_ports);
        }
    }

    /// Complete the run (advancing any remaining cycles) and return the
    /// collected statistics — the terminal step of the [`Self::advance_until`]
    /// stepping API. `run()` is equivalent to calling this without any
    /// prior stepping.
    pub fn finish(mut self) -> RunStats {
        self.run_inner();
        self.finish_stats()
    }

    fn run_inner(&mut self) {
        let total = self.cfg.total_cycles();
        match self.cfg.engine {
            crate::config::EngineKind::Dense | crate::config::EngineKind::Event => {
                self.advance_until(total);
                if let Some(t) = self.phase_timers.take() {
                    let name = match self.cfg.engine {
                        crate::config::EngineKind::Dense => "dense",
                        _ => "event",
                    };
                    eprint!("{}", t.report(name));
                }
            }
            crate::config::EngineKind::Sharded => {
                crate::shard::run(self, total);
            }
        }
    }

    pub(crate) fn batch_done(&self) -> bool {
        let retries_empty = self.fault.as_ref().is_none_or(|f| f.retries.is_empty());
        self.closed_total.is_some_and(|t| {
            self.packets.total_created >= t && self.packets.live() == 0 && retries_empty
        })
    }

    fn finish_stats(self) -> RunStats {
        let hosts = self.hosts();
        let packets = self.packets.total_created;
        let window = self.cfg.measure_cycles.max(1) as f64;
        let mean_util = if self.channel_flits.is_empty() {
            0.0
        } else {
            self.channel_flits.iter().sum::<u64>() as f64 / window / self.channel_flits.len() as f64
        };
        let max_util = self
            .channel_flits
            .iter()
            .map(|&f| f as f64 / window)
            .fold(0.0f64, f64::max);
        let mut stats = self.stats.finish(&self.cfg, hosts, packets as usize);
        stats.mean_channel_utilization = mean_util;
        stats.max_channel_utilization = max_util;
        let (dropped_all, retries_pending) = match &self.fault {
            Some(f) => {
                stats.dropped_packets = f.dropped_measured;
                stats.dropped_packets_all_time = f.dropped_all;
                stats.salvaged_packets = f.salvaged;
                stats.retried_packets = f.retried;
                stats.abandoned_packets = f.abandoned;
                (f.dropped_all, f.retries.len() as u64)
            }
            None => (0, 0),
        };
        stats.completion_cycle = if packets > 0
            && retries_pending == 0
            && self.delivered_all_time + dropped_all == packets
        {
            Some(self.last_progress)
        } else {
            None
        };
        stats.longest_stall_cycles = self.longest_stall;
        stats.peak_in_flight_packets = self.packets.peak_live;
        stats.peak_buffered_flits = self.peak_buffered_flits;
        // Threshold: far beyond any legitimate wait (a full header + link
        // pipeline plus one packet serialization, with a wide margin).
        let threshold =
            16 * (self.cfg.header_delay + self.cfg.link_delay + self.cfg.packet_flits as u64);
        stats.deadlock_suspected =
            self.longest_stall > threshold && packets > self.delivered_all_time + dropped_all;
        stats
    }

    // ------------------------------------------------------------------
    // Dense reference core: scan everything, every cycle.
    // ------------------------------------------------------------------

    /// Advance one cycle (dense reference).
    fn step_dense(&mut self) {
        let now = self.now;
        let mut stamp = self.phase_stamp();

        // 0. Faults due this cycle (mask mutation, purges, reroute).
        self.process_faults(now);

        // 1. Credit returns.
        while let Some(&(t, ch, vc)) = self.credits_in_flight.front() {
            if t > now {
                break;
            }
            self.credits_in_flight.pop_front();
            self.apply_credit(ch, vc);
        }

        // 2. Link arrivals into input buffers.
        for ch in 0..self.links.len() {
            while let Some(&(t, flit, vc)) = self.links[ch].front() {
                if t > now {
                    break;
                }
                self.links[ch].pop_front();
                self.buf_push(ch, vc as usize, flit, now);
            }
        }
        self.phase_mark(&mut stamp, crate::timing::Phase::Wheel);

        // 3. Injection.
        self.inject_dense(now);
        self.phase_mark(&mut stamp, crate::timing::Phase::Inject);

        // 4. Routing + VC allocation.
        self.allocate_dense(now);
        self.phase_mark(&mut stamp, crate::timing::Phase::Route);

        // 5a. Switch allocation + flit traversal: one flit per channel per
        // cycle, round-robin over the input VCs that own one of its output
        // VCs.
        for ch in 0..self.links.len() {
            self.grant_channel(ch, now);
        }
        self.phase_mark(&mut stamp, crate::timing::Phase::Arbitrate);

        // 5b. Ejection: one flit per (switch, port) per cycle.
        for i in 0..self.n_inputs {
            if self.input_used[i] {
                continue;
            }
            for v in 0..self.vc_count(i) {
                self.try_eject_vc(i, v, now);
            }
        }
        self.clear_used();
        self.watchdog(now);
        self.phase_mark(&mut stamp, crate::timing::Phase::Eject);
        if let Some(t) = &mut self.phase_timers {
            t.cycles += 1;
        }
        self.now += 1;
    }

    /// Start a per-phase timing stamp (None when timing is off).
    #[inline]
    pub(crate) fn phase_stamp(&self) -> Option<std::time::Instant> {
        self.phase_timers.is_some().then(std::time::Instant::now)
    }

    /// Credit the wall time since `stamp` to phase `p` and restart it.
    #[inline]
    pub(crate) fn phase_mark(
        &mut self,
        stamp: &mut Option<std::time::Instant>,
        p: crate::timing::Phase,
    ) {
        if let (Some(t), Some(s)) = (self.phase_timers.as_deref_mut(), stamp.as_mut()) {
            t.mark(s, p);
        }
    }

    fn inject_dense(&mut self, now: u64) {
        if now == 0 && !self.pending_batch.is_empty() {
            let batch = std::mem::take(&mut self.pending_batch);
            for (src, dest) in batch {
                self.enqueue_packet(now, src, dest);
            }
        }
        self.drain_staged_ready(now);
        self.inject_retries(now);
        let hosts = self.hosts();
        for h in 0..hosts {
            if self.source_next_cycle(h) == now {
                self.fire_host(h, now);
            }
        }
    }

    fn allocate_dense(&mut self, now: u64) {
        for i in 0..self.n_inputs {
            for v in 0..self.vc_count(i) {
                let iv = i * self.nvc + v;
                let Some(head) = self.buf_front(iv) else {
                    continue;
                };
                if head.seq != 0 || self.ivc[iv].alloc != ALLOC_NONE {
                    continue;
                }
                debug_assert_ne!(self.ivc[iv].ready, u64::MAX, "head never armed");
                if now < self.ivc[iv].ready {
                    continue;
                }
                if let AllocOutcome::Unroutable = self.try_allocate_vc(i, v, now) {
                    self.unroutable_drop(i, v, now);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Shared mutation helpers: every observable state change goes through
    // these, on both the dense and the event core. The `self.ev` branches
    // keep the event engine's active sets and timing wheel in sync; they
    // are no-ops on the dense core.
    // ------------------------------------------------------------------

    /// The cycle of `host`'s next injection-side action, whichever source
    /// drives this workload ([`NEVER`] = nothing scheduled).
    #[inline]
    pub(crate) fn source_next_cycle(&self, host: usize) -> u64 {
        match &self.flows {
            Some(fs) => fs.next_cycle(host),
            None => self.injector.next_cycle(host),
        }
    }

    /// Run `host`'s due injection action at `now`, dispatching to the
    /// workload's source (flow state machine or Bernoulli injector).
    pub(crate) fn fire_host(&mut self, host: usize, now: u64) {
        if self.flows.is_some() {
            self.fire_flow_host(host, now);
        } else {
            self.inject_host(host, now);
        }
    }

    /// Flow-source injection step for one host: process a due flow arrival
    /// and/or emit the next paced packet of the head-of-line flow.
    fn fire_flow_host(&mut self, host: usize, now: u64) {
        // Take the source out so its RNG draws can't alias `self` (the
        // enqueue below re-borrows the whole simulator).
        let mut fs = self.flows.take().expect("flow workload has a source");
        debug_assert_eq!(fs.next_cycle(host), now);
        let emit = fs.fire(host, now);
        let next = fs.next_cycle(host);
        self.flows = Some(fs);
        if let Some(ev) = &mut self.ev {
            if next != NEVER {
                ev.schedule_injection(next, host);
            }
        }
        if let Some(e) = emit {
            if e.first {
                let measured = now >= self.cfg.warmup_cycles
                    && now < self.cfg.warmup_cycles + self.cfg.measure_cycles;
                self.stats.on_flow_started(measured);
            }
            self.enqueue_packet_tagged(
                now,
                host,
                e.dest,
                0,
                PacketTag::Flow {
                    id: e.id,
                    start: e.start,
                    total: e.total,
                },
            );
        }
    }

    /// Enqueue every newly releasable collective stage. Ejections push
    /// host ids into `staged_ready` as stage expectations complete; the
    /// queue is drained here — at the *next* cycle's injection phase,
    /// sorted and deduped — so the release order (and thus packet uids)
    /// is independent of the engine's within-cycle ejection order.
    pub(crate) fn drain_staged_ready(&mut self, now: u64) {
        if self.staged_ready.is_empty() {
            return;
        }
        let mut ready = std::mem::take(&mut self.staged_ready);
        ready.sort_unstable();
        ready.dedup();
        let mut st = self.staged.take().expect("staged workload has state");
        let msg = st.spec().msg_packets();
        let mut sends: Vec<(u32, u32)> = Vec::new();
        for &h in &ready {
            sends.clear();
            st.collect_releases(h as usize, &mut sends);
            for &(dest, stage) in &sends {
                for _ in 0..msg {
                    self.enqueue_packet_tagged(
                        now,
                        h as usize,
                        dest as usize,
                        0,
                        PacketTag::Stage { stage },
                    );
                }
            }
        }
        self.staged = Some(st);
        ready.clear();
        self.staged_ready = ready;
    }

    /// Inject one packet from `host` at its scheduled cycle and draw the
    /// host's next injection gap.
    pub(crate) fn inject_host(&mut self, host: usize, now: u64) {
        debug_assert_eq!(self.injector.next_cycle(host), now);
        let hosts = self.hosts();
        let dest = {
            let pattern = self
                .pattern
                .as_ref()
                .expect("open workload has a traffic pattern");
            pattern.pick(host, hosts, self.injector.rng_mut(host))
        };
        self.injector.advance(host, now);
        if let Some(ev) = &mut self.ev {
            let next = self.injector.next_cycle(host);
            if next != NEVER {
                ev.schedule_injection(next, host);
            }
        }
        self.enqueue_packet(now, host, dest);
    }

    /// Create a packet and push its flits into the source host's injection
    /// queue.
    pub(crate) fn enqueue_packet(&mut self, now: u64, src_host: usize, dest_host: usize) {
        self.enqueue_packet_tagged(now, src_host, dest_host, 0, PacketTag::None);
    }

    /// Like [`Self::enqueue_packet`] but recording the retry attempt number
    /// (used when a fault-dropped packet is re-sent by its source host) and
    /// the workload-layer tag the packet carries.
    pub(crate) fn enqueue_packet_tagged(
        &mut self,
        now: u64,
        src_host: usize,
        dest_host: usize,
        attempt: u32,
        tag: PacketTag,
    ) {
        debug_assert_ne!(src_host, dest_host);
        let dest_sw = (dest_host / self.cfg.hosts_per_switch) as u32;
        let src_sw = src_host / self.cfg.hosts_per_switch;
        let route = self.routing.init(src_sw, dest_sw as usize);
        let measured =
            now >= self.cfg.warmup_cycles && now < self.cfg.warmup_cycles + self.cfg.measure_cycles;
        let uid = self.packets.total_created as u32;
        let id = self.packets.alloc(Packet {
            uid,
            src_host: src_host as u32,
            dest_host: dest_host as u32,
            dest_sw,
            created: now,
            route,
            measured,
            attempt,
            tag,
        });
        self.stats.on_offered(now, self.cfg.packet_flits);
        self.telemetry.on_created(id, src_sw as u32, dest_sw, now);
        if let Some(tr) = &mut self.tracer {
            tr.record(
                now,
                uid,
                TraceEvent::Injected {
                    src_sw,
                    dest_sw: dest_sw as usize,
                },
            );
        }
        let input = self.injection_input(src_host);
        for seq in 0..self.cfg.packet_flits as u16 {
            self.buf_push(input, 0, Flit { packet: id, seq }, now);
        }
        if self.telemetry.enabled() {
            let depth = self.buf_len(input * self.nvc) as u32;
            self.telemetry.on_inject_depth(depth, now);
        }
    }

    // --- input-VC buffer accessors -------------------------------------
    // Network `iv`s (< net_ivs) live in the flat ring arena; injection
    // `iv`s in per-host deques. All logical state (front, order, length)
    // is representation-independent, so both engines see identical
    // buffers either way.

    /// Flits resident in buffer `iv`.
    #[inline]
    pub(crate) fn buf_len(&self, iv: usize) -> usize {
        if iv < self.net_ivs {
            (self.net_pos[iv] & 0xFFFF) as usize
        } else {
            self.inj_buf[iv - self.net_ivs].len()
        }
    }

    /// Front flit of buffer `iv`, by value ([`Flit`] is 8 bytes).
    #[inline]
    pub(crate) fn buf_front(&self, iv: usize) -> Option<Flit> {
        if iv < self.net_ivs {
            let pos = self.net_pos[iv];
            if pos & 0xFFFF == 0 {
                None
            } else {
                Some(self.net_buf[iv * self.cfg.buffer_flits + (pos >> 16) as usize])
            }
        } else {
            self.inj_buf[iv - self.net_ivs].front().copied()
        }
    }

    /// Raw append to buffer `iv` (no stats/telemetry/arming — callers use
    /// [`Self::buf_push`]).
    #[inline]
    fn buf_push_raw(&mut self, iv: usize, flit: Flit) {
        if iv < self.net_ivs {
            let cap = self.cfg.buffer_flits;
            let pos = self.net_pos[iv];
            let (head, len) = ((pos >> 16) as usize, (pos & 0xFFFF) as usize);
            debug_assert!(len < cap, "ring overflow: credit loop broken");
            let mut at = head + len;
            if at >= cap {
                at -= cap;
            }
            self.net_buf[iv * cap + at] = flit;
            self.net_pos[iv] = pos + 1;
        } else {
            self.inj_buf[iv - self.net_ivs].push_back(flit);
        }
    }

    /// Raw pop of the front flit of buffer `iv`.
    #[inline]
    fn buf_pop_raw(&mut self, iv: usize) -> Flit {
        if iv < self.net_ivs {
            let cap = self.cfg.buffer_flits;
            let pos = self.net_pos[iv];
            let (head, len) = ((pos >> 16) as usize, (pos & 0xFFFF) as usize);
            debug_assert!(len > 0, "pop from empty ring");
            let flit = self.net_buf[iv * cap + head];
            let mut nh = head + 1;
            if nh == cap {
                nh = 0;
            }
            self.net_pos[iv] = ((nh as u32) << 16) | (len as u32 - 1);
            flit
        } else {
            self.inj_buf[iv - self.net_ivs]
                .pop_front()
                .expect("nonempty")
        }
    }

    /// Whether any flit of packet `pkt` sits in buffer `iv` (fault paths).
    pub(crate) fn buf_contains_packet(&self, iv: usize, pkt: u32) -> bool {
        let mut found = false;
        self.buf_for_each(iv, |f| found |= f.packet == pkt);
        found
    }

    /// Visit every resident flit of buffer `iv` front-to-back (fault
    /// paths).
    pub(crate) fn buf_for_each(&self, iv: usize, mut f: impl FnMut(Flit)) {
        if iv < self.net_ivs {
            let cap = self.cfg.buffer_flits;
            let pos = self.net_pos[iv];
            let (head, len) = ((pos >> 16) as usize, (pos & 0xFFFF) as usize);
            for k in 0..len {
                let mut at = head + k;
                if at >= cap {
                    at -= cap;
                }
                f(self.net_buf[iv * cap + at]);
            }
        } else {
            for &fl in &self.inj_buf[iv - self.net_ivs] {
                f(fl);
            }
        }
    }

    /// Drop every flit of packet `pkt` from buffer `iv`, preserving the
    /// order of the survivors; returns how many were removed (fault
    /// paths). Survivors are compacted toward `head` — the write slot
    /// `head + kept` trails the read slot `head + k` (`kept <= k`), so an
    /// already-read slot is never clobbered.
    pub(crate) fn buf_retain_not_packet(&mut self, iv: usize, pkt: u32) -> usize {
        if iv < self.net_ivs {
            let cap = self.cfg.buffer_flits;
            let base = iv * cap;
            let pos = self.net_pos[iv];
            let (head, len) = ((pos >> 16) as usize, (pos & 0xFFFF) as usize);
            let mut kept = 0usize;
            for k in 0..len {
                let mut at = head + k;
                if at >= cap {
                    at -= cap;
                }
                let flit = self.net_buf[base + at];
                if flit.packet != pkt {
                    let mut to = head + kept;
                    if to >= cap {
                        to -= cap;
                    }
                    self.net_buf[base + to] = flit;
                    kept += 1;
                }
            }
            self.net_pos[iv] = ((head as u32) << 16) | kept as u32;
            len - kept
        } else {
            let q = &mut self.inj_buf[iv - self.net_ivs];
            let before = q.len();
            q.retain(|f| f.packet != pkt);
            before - q.len()
        }
    }

    /// Append a flit to an input-VC buffer. A head flit landing in an empty
    /// buffer arms the header-processing timer (the cycle at which the
    /// dense scan would first see it).
    pub(crate) fn buf_push(&mut self, i: usize, v: usize, flit: Flit, now: u64) {
        let iv = i * self.nvc + v;
        self.buf_push_raw(iv, flit);
        let depth = self.buf_len(iv);
        let was_empty = depth == 1;
        self.buffered_flits += 1;
        self.peak_buffered_flits = self.peak_buffered_flits.max(self.buffered_flits);
        if let Some(sc) = &mut self.shard {
            sc.pushes += 1;
        }
        // Network inputs only (input unit i receives channel i for
        // i < channels); injection pushes are covered by `on_inject_depth`.
        if i < self.links.len() {
            let is_tail = flit.seq as usize + 1 == self.cfg.packet_flits;
            self.telemetry.on_link_arrival(
                i as u32,
                v as u32,
                depth as u32,
                flit.packet,
                is_tail,
                now,
            );
        }
        if was_empty {
            if flit.seq == 0 {
                debug_assert!(
                    self.ivc[iv].alloc == ALLOC_NONE,
                    "fresh head in a buffer still owned by a previous packet"
                );
                self.arm_header(i, v, now);
            } else if let Some(OutRef::Net { channel, vc }) = decode_alloc(self.ivc[iv].alloc) {
                // Mid-stream refill of a drained buffer: the allocated
                // output VC may be sendable again.
                self.refresh_ready(channel, vc as usize);
            }
        }
    }

    fn buf_pop(&mut self, i: usize, v: usize) -> Flit {
        let flit = self.buf_pop_raw(i * self.nvc + v);
        self.buffered_flits -= 1;
        flit
    }

    /// Arm the header-delay timer for the head packet of `(i, v)`: routing
    /// work conceptually starts at `arm_cycle`, and allocation may first be
    /// attempted `max(header_delay, 1)` cycles later (the dense scan needs
    /// at least one cycle between arming and allocating, so delay-0 configs
    /// still wait one cycle).
    pub(crate) fn arm_header(&mut self, i: usize, v: usize, arm_cycle: u64) {
        let ready = arm_cycle + self.cfg.header_delay.max(1);
        self.ivc[i * self.nvc + v].ready = ready;
        if let Some(ev) = &mut self.ev {
            ev.schedule_route(ready, i, v);
        }
    }

    /// Release an input VC after its tail left; a revealed next-packet head
    /// is seen by the allocator no earlier than the following cycle.
    fn release_input_vc(&mut self, i: usize, v: usize, now: u64) {
        let iv = i * self.nvc + v;
        self.ivc[iv].alloc = ALLOC_NONE;
        self.ivc[iv].ready = u64::MAX;
        if let Some(head) = self.buf_front(iv) {
            debug_assert_eq!(head.seq, 0, "packets stream whole, in order");
            self.arm_header(i, v, now + 1);
        }
    }

    /// Set the wake-up dirty bit for `node` (see [`Self::node_dirty`]).
    #[inline]
    pub(crate) fn mark_node_dirty(&mut self, node: usize) {
        self.node_dirty[node >> 6] |= 1u64 << (node & 63);
    }

    /// Batched credit drain for one timing-wheel slot (event core): the
    /// loop lives here so [`Self::apply_credit`] inlines against field
    /// loads hoisted out of the loop.
    pub(crate) fn drain_credits(&mut self, credits: &[(u32, u8)]) {
        for &(ch, vc) in credits {
            self.apply_credit(ch as usize, vc);
        }
    }

    /// Batched link-arrival drain for one timing-wheel slot (event core).
    pub(crate) fn drain_links(&mut self, links: &[(u32, u8, Flit)], now: u64) {
        for &(ch, vc, flit) in links {
            self.buf_push(ch as usize, vc as usize, flit, now);
        }
    }

    pub(crate) fn apply_credit(&mut self, ch: usize, vc: u8) {
        let ov = self.ch_slot[ch] as usize * self.nvc + vc as usize;
        let s = self.ovc_state[ov] + 1;
        self.ovc_state[ov] = s;
        debug_assert!(
            ovc_credits_of(s) as usize <= self.cfg.buffer_flits,
            "credit overflow on channel {ch} vc {vc}"
        );
        if s == OVC_FREE + self.alloc_need as u64 {
            // A free VC just crossed the grant threshold: blocked heads at
            // the source switch may now allocate it.
            self.mark_node_dirty(self.ch_src[ch] as usize);
        } else if s < OVC_FREE && ovc_credits_of(s) == 1 {
            // A 0→1 credit transition may un-starve the owner.
            self.refresh_ready(ch, vc as usize);
        }
    }

    /// Recompute the [`ChHot::ready`] bit for output VC `(ch, vc)` from
    /// the owner/credit/buffer state it summarizes.
    pub(crate) fn refresh_ready(&mut self, ch: usize, vc: usize) {
        let slot = self.ch_slot[ch] as usize;
        let s = self.ovc_state[slot * self.nvc + vc];
        let owner = ovc_owner_of(s);
        let ready = owner != OWNER_NONE && ovc_credits_of(s) > 0 && {
            let (i, v) = owner_unpack(owner);
            self.buf_len(i * self.nvc + v as usize) > 0
        };
        if ready {
            self.chv[slot].ready |= 1u64 << vc;
        } else {
            self.chv[slot].ready &= !(1u64 << vc);
        }
    }

    /// Schedule a flit's link traversal toward the downstream input. A
    /// zero-delay link still delivers next cycle (the dense scan processes
    /// arrivals before sends, so a same-cycle send is seen one cycle later).
    fn send_flit_on_link(&mut self, ch: usize, flit: Flit, vc: u8, now: u64) {
        let t = now + self.cfg.link_delay.max(1);
        if let Some(sc) = &mut self.shard {
            if sc.remote_link[ch] {
                // Cross-shard hop: divert into the outbound mailbox. A
                // head flit also mails a copy of the packet via the payload
                // sidecar (route state is final for this hop — `on_hop`
                // already ran at allocation); the local copy is retired
                // when the tail crosses.
                let head = flit.seq == 0;
                if head {
                    sc.out_packets.push(self.packets.get(flit.packet).clone());
                }
                sc.out_links.push(crate::shard::LinkMsg {
                    t,
                    ch: ch as u32,
                    vc,
                    head,
                    flit,
                });
                if head {
                    // Log the slab handoff so telemetry replay can bind the
                    // destination shard's slot to the same replay identity.
                    self.telemetry.push_event(dsn_telemetry::HookEvent {
                        now,
                        kind: dsn_telemetry::hook_kind::EXPORT,
                        a: ch as u32,
                        b: vc as u32,
                        c: 0,
                        d: flit.packet,
                        flag: false,
                    });
                }
                return;
            }
        }
        match &mut self.ev {
            Some(ev) => ev.schedule_link(t, ch, flit, vc),
            None => self.links[ch].push_back((t, flit, vc)),
        }
    }

    /// Schedule a credit return toward the upstream output VC (zero-delay
    /// credits likewise land next cycle).
    fn return_credit(&mut self, ch: usize, vc: u8, now: u64) {
        let t = now + self.cfg.credit_delay.max(1);
        if let Some(sc) = &mut self.shard {
            if sc.remote_credit[ch] {
                sc.out_credits.push(crate::shard::CreditMsg {
                    t,
                    ch: ch as u32,
                    vc,
                });
                return;
            }
        }
        match &mut self.ev {
            Some(ev) => ev.schedule_credit(t, ch, vc),
            None => self.credits_in_flight.push_back((t, ch, vc)),
        }
    }

    fn mark_input_used(&mut self, i: usize) {
        debug_assert!(!self.input_used[i]);
        self.input_used[i] = true;
        self.touched_inputs.push(i as u32);
    }

    pub(crate) fn clear_used(&mut self) {
        let mut touched = std::mem::take(&mut self.touched_inputs);
        for &i in &touched {
            self.input_used[i as usize] = false;
        }
        touched.clear();
        self.touched_inputs = touched;
        let mut touched = std::mem::take(&mut self.touched_ejects);
        for &s in &touched {
            self.eject_used[s as usize] = false;
        }
        touched.clear();
        self.touched_ejects = touched;
    }

    /// Deadlock watchdog: count consecutive cycles in which packets are in
    /// flight yet no flit moved anywhere (injection does not count — an
    /// open workload keeps injecting into a wedged network).
    pub(crate) fn watchdog(&mut self, now: u64) {
        if self.last_progress == now || self.packets.live() == 0 {
            self.current_stall = 0;
        } else {
            self.current_stall += 1;
            self.longest_stall = self.longest_stall.max(self.current_stall);
        }
    }

    /// Routing + VC allocation for one head packet whose timer has expired.
    /// The caller guarantees the head is a seq-0 flit, unallocated, with
    /// `now >= route_ready_at`.
    pub(crate) fn try_allocate_vc(&mut self, i: usize, v: usize, now: u64) -> AllocOutcome {
        let node = self.input_node[i] as usize;
        let iv = i * self.nvc + v;
        let head = self.buf_front(iv).expect("head present");
        debug_assert_eq!(head.seq, 0);
        debug_assert!(self.ivc[iv].alloc == ALLOC_NONE);
        debug_assert!(now >= self.ivc[iv].ready);
        let pkt_idx = head.packet;
        let dest_sw = self.packets.get(pkt_idx).dest_sw as usize;
        if let Some(f) = &self.fault {
            // A dead local or destination switch makes the packet unroutable
            // outright (it can never be delivered while the switch is down).
            if !f.mask.node_up(node) || !f.mask.node_up(dest_sw) {
                return AllocOutcome::Unroutable;
            }
        }
        if dest_sw == node {
            // Eject: always grantable (sink arbitrated per cycle).
            let port = self.packets.get(pkt_idx).dest_host as usize % self.cfg.hosts_per_switch;
            self.ivc[iv].alloc = alloc_eject(port);
            self.ivc[iv].alloc_pkt = pkt_idx;
            self.telemetry.on_alloc_granted(pkt_idx, now);
            return AllocOutcome::Eject;
        }
        let need = self.alloc_need;
        let mut outcome = AllocOutcome::Blocked;
        let mut usable = 0usize;
        // Take the table out for the scan instead of cloning the Arc: a
        // per-attempt refcount bump on an Arc shared across sweep threads
        // would contend on its cache line.
        let flat_opt = self.flat.take();
        match &flat_opt {
            Some(flat) => {
                // Hot path: candidates from the compiled table, preference
                // order identical to the dynamic scan by construction.
                let ctx = flat.ctx(&self.packets.get(pkt_idx).route);
                let row = flat.row(ctx, node, dest_sw);
                debug_assert!(
                    self.fault.is_some() || flat.needs_dyn_escape() || !row.is_empty(),
                    "no route from {node} to {dest_sw}"
                );
                for &packed in row {
                    let (ch, vc) = crate::flat::unpack(packed);
                    debug_assert_eq!(self.graph.channel_endpoints(ch).0, node);
                    if self
                        .fault
                        .as_ref()
                        .is_some_and(|f| !f.mask.channel_alive(ch))
                    {
                        continue;
                    }
                    usable += 1;
                    if self.try_grant(i, v, pkt_idx, node, ch, vc, need, now) {
                        match flat.hop_phase(ch, vc) {
                            Some(phase) => {
                                self.packets.get_mut(pkt_idx).route.ud_phase = phase;
                            }
                            None => {
                                let route = &mut self.packets.get_mut(pkt_idx).route;
                                self.routing.on_hop(node, dest_sw, route, ch, vc);
                            }
                        }
                        self.telemetry.on_alloc_granted(pkt_idx, now);
                        outcome = AllocOutcome::Net(ch);
                        break;
                    }
                }
                if matches!(outcome, AllocOutcome::Blocked) && flat.needs_dyn_escape() {
                    // Escape residue: scanned only after every tabulated
                    // candidate blocked — the same concatenated preference
                    // list the dynamic path walks.
                    let mut esc = std::mem::take(&mut self.esc_scratch);
                    esc.clear();
                    self.routing.escape_candidates(
                        node,
                        dest_sw,
                        &self.packets.get(pkt_idx).route,
                        &mut esc,
                    );
                    for &(ch, vc) in &esc {
                        debug_assert_eq!(self.graph.channel_endpoints(ch).0, node);
                        if self
                            .fault
                            .as_ref()
                            .is_some_and(|f| !f.mask.channel_alive(ch))
                        {
                            continue;
                        }
                        usable += 1;
                        if self.try_grant(i, v, pkt_idx, node, ch, vc, need, now) {
                            let route = &mut self.packets.get_mut(pkt_idx).route;
                            self.routing.on_hop(node, dest_sw, route, ch, vc);
                            self.telemetry.on_alloc_granted(pkt_idx, now);
                            outcome = AllocOutcome::Net(ch);
                            break;
                        }
                    }
                    self.esc_scratch = esc;
                }
            }
            None => {
                // Reference path: dynamic trait calls per attempt.
                let mut candidates = std::mem::take(&mut self.cand_scratch);
                candidates.clear();
                self.routing.candidates(
                    node,
                    dest_sw,
                    &self.packets.get(pkt_idx).route,
                    &mut candidates,
                );
                debug_assert!(
                    self.fault.is_some() || !candidates.is_empty(),
                    "no route from {node} to {dest_sw}"
                );
                for &(ch, vc) in &candidates {
                    debug_assert_eq!(self.graph.channel_endpoints(ch).0, node);
                    if self
                        .fault
                        .as_ref()
                        .is_some_and(|f| !f.mask.channel_alive(ch))
                    {
                        continue;
                    }
                    usable += 1;
                    if self.try_grant(i, v, pkt_idx, node, ch, vc, need, now) {
                        let route = &mut self.packets.get_mut(pkt_idx).route;
                        self.routing.on_hop(node, dest_sw, route, ch, vc);
                        self.telemetry.on_alloc_granted(pkt_idx, now);
                        outcome = AllocOutcome::Net(ch);
                        break;
                    }
                }
                self.cand_scratch = candidates;
            }
        }
        self.flat = flat_opt;
        if matches!(outcome, AllocOutcome::Blocked) && usable == 0 && self.fault.is_some() {
            // Every candidate is structurally dead on the survivor graph
            // (not merely busy): the packet cannot make progress here.
            outcome = AllocOutcome::Unroutable;
        }
        if matches!(outcome, AllocOutcome::Blocked) {
            // Countable identically on both engines: the dense scan and the
            // event core's `alloc_pending` set visit the same eligible
            // heads each cycle.
            self.telemetry.on_alloc_blocked(node as u32, now);
        }
        outcome
    }

    /// Attempt to grant output VC `(ch, vc)` to head `(i, v)`: checks the
    /// owner and credit gates, and on success records the ownership, the
    /// input allocation and the trace event (the caller commits the hop and
    /// telemetry, preserving the exact historical effect order).
    #[allow(clippy::too_many_arguments)]
    fn try_grant(
        &mut self,
        i: usize,
        v: usize,
        pkt_idx: u32,
        node: usize,
        ch: usize,
        vc: u8,
        need: u32,
        now: u64,
    ) -> bool {
        let slot = self.ch_slot[ch] as usize;
        let ov = slot * self.nvc + vc as usize;
        let s = self.ovc_state[ov];
        // Single compare: owner != NONE implies s < OVC_FREE (the owner
        // field is maximal only for NONE), and owner == NONE makes the
        // low half the credit count — so s >= OVC_FREE + need means
        // exactly "free with at least `need` credits".
        if s < OVC_FREE + need as u64 {
            return false;
        }
        self.ovc_state[ov] = ovc_pack(owner_pack(i, v as u8), ovc_credits_of(s));
        self.chv[slot].owned |= 1u64 << vc;
        // Freshly granted: credits >= need >= 1 and the head flit is
        // buffered, so the VC is sendable right away.
        self.chv[slot].ready |= 1u64 << vc;
        self.ivc[i * self.nvc + v].alloc = alloc_net(ch, vc);
        self.ivc[i * self.nvc + v].alloc_pkt = pkt_idx;
        if let Some(tr) = &mut self.tracer {
            let uid = self.packets.get(pkt_idx).uid;
            tr.record(
                now,
                uid,
                TraceEvent::VcAllocated {
                    at: node,
                    channel: ch,
                    vc,
                },
            );
        }
        true
    }

    /// Switch allocation + flit send for one output channel this cycle:
    /// round-robin over the sendable output VCs ([`ChHot::ready`] —
    /// owned, credited, flit buffered), send at most one flit.
    pub(crate) fn grant_channel(&mut self, ch: usize, now: u64) {
        let slot = self.ch_slot[ch] as usize;
        let ready = self.chv[slot].ready;
        if ready == 0 {
            return;
        }
        let nvc = self.nvc;
        let base = slot * nvc;
        let start = self.chv[slot].rr as usize;
        let mut granted: Option<(usize, u8, u8)> = None; // (input, ivc, ovc)
                                                         // Rotate so the RR pointer lands at bit 0: an ascending scan of the
                                                         // rotated word visits the bits at or above the pointer first, then
                                                         // the wrapped ones — exact round-robin order, one loop.
        let mut rot = ready.rotate_right(start as u32);
        while rot != 0 {
            let ovc = (rot.trailing_zeros() as usize + start) & 63;
            let owner = ovc_owner_of(self.ovc_state[base + ovc]);
            debug_assert_ne!(owner, OWNER_NONE, "ready bit without owner");
            let (i, v) = owner_unpack(owner);
            if !self.input_used[i] {
                granted = Some((i, v, ovc as u8));
                break;
            }
            rot &= rot - 1;
        }
        let Some((i, v, ovc)) = granted else {
            return;
        };
        self.last_progress = now;
        self.mark_input_used(i);
        self.chv[slot].rr = ((ovc as usize + 1) % nvc) as u32;
        let flit = self.buf_pop(i, v as usize);
        let ov = base + ovc as usize;
        // Credits >= 1 is guaranteed by the ready bit, so the packed
        // decrement cannot borrow into the owner half.
        self.ovc_state[ov] -= 1;
        self.send_flit_on_link(ch, flit, ovc, now);
        if now >= self.cfg.warmup_cycles && now < self.cfg.warmup_cycles + self.cfg.measure_cycles {
            self.channel_flits[ch] += 1;
        }
        // Return a credit upstream for the flit leaving this buffer.
        let up = self.input_upstream[i];
        if up != NO_UPSTREAM {
            self.return_credit(up as usize, v, now);
        }
        let tail = flit.seq as usize + 1 == self.cfg.packet_flits;
        if tail
            || ovc_credits_of(self.ovc_state[ov]) == 0
            || self.buf_len(i * nvc + v as usize) == 0
        {
            self.chv[slot].ready &= !(1u64 << ovc);
        }
        self.telemetry
            .on_flit_sent(ch as u32, flit.packet, tail, now);
        if tail {
            // tail: release ownership and input state
            let s = self.ovc_state[ov] | OVC_FREE;
            self.ovc_state[ov] = s;
            self.chv[slot].owned &= !(1u64 << ovc);
            if ovc_credits_of(s) >= self.alloc_need {
                // Released with enough credits banked: immediately
                // grantable, so wake blocked heads at the source switch.
                self.mark_node_dirty(self.ch_src[ch] as usize);
            }
            if let Some(tr) = &mut self.tracer {
                let at = self.input_node[i] as usize;
                let uid = self.packets.get(flit.packet).uid;
                tr.record(now, uid, TraceEvent::TailSent { at, channel: ch });
            }
            self.release_input_vc(i, v as usize, now);
            // Tail crossed a shard boundary: the packet now lives in the
            // destination shard's slab (imported from the head payload), so
            // the local copy can be retired.
            if self.shard.as_ref().is_some_and(|sc| sc.remote_link[ch]) {
                self.packets.retire(flit.packet);
            }
        }
    }

    /// Eject one flit from `(i, v)` if it holds an ejection grant and the
    /// input port + ejection port are both free this cycle. Returns true
    /// when the tail was ejected (packet delivered and retired).
    pub(crate) fn try_eject_vc(&mut self, i: usize, v: usize, now: u64) -> bool {
        if self.input_used[i] {
            return false;
        }
        let iv = i * self.nvc + v;
        let a = self.ivc[iv].alloc;
        if !alloc_is_eject(a) {
            return false;
        }
        let port = (a & !ALLOC_EJECT_BIT) as usize;
        if self.buf_len(iv) == 0 {
            return false;
        }
        let node = self.input_node[i] as usize;
        let slot = node * self.cfg.hosts_per_switch + port;
        if self.eject_used[slot] {
            return false;
        }
        self.eject_used[slot] = true;
        self.touched_ejects.push(slot as u32);
        self.mark_input_used(i);
        self.last_progress = now;
        let flit = self.buf_pop(i, v);
        let up = self.input_upstream[i];
        if up != NO_UPSTREAM {
            self.return_credit(up as usize, v as u8, now);
        }
        let tail = flit.seq as usize + 1 == self.cfg.packet_flits;
        self.telemetry.on_ejected(flit.packet, tail, now);
        if tail {
            self.delivered_all_time += 1;
            let (uid, created, measured, dest_host, ptag) = {
                let pkt = self.packets.get(flit.packet);
                (pkt.uid, pkt.created, pkt.measured, pkt.dest_host, pkt.tag)
            };
            if let Some(tr) = &mut self.tracer {
                tr.record(now, uid, TraceEvent::Delivered { at: node });
            }
            self.stats
                .on_delivered(now, created, measured, self.cfg.packet_flits);
            match ptag {
                PacketTag::None => {}
                PacketTag::Flow { id, start, total } => {
                    // FCT membership follows the flow's *start* cycle (the
                    // whole flow is measured or not, never split), so the
                    // per-class tallies partition the started flows.
                    let measured_flow = start >= self.cfg.warmup_cycles
                        && start < self.cfg.warmup_cycles + self.cfg.measure_cycles;
                    if let Some(fct) =
                        self.stats
                            .on_flow_packet(id, total, start, now, measured_flow)
                    {
                        self.telemetry.on_flow_completed(
                            crate::stats::flow_class(total) as u32,
                            fct as u32,
                            (fct >> 32) as u32,
                            now,
                        );
                    }
                }
                PacketTag::Stage { stage } => {
                    let st = self.staged.as_mut().expect("staged workload has state");
                    if st.on_recv(dest_host as usize, stage) {
                        // Released next cycle, via the sorted drain.
                        self.staged_ready.push(dest_host);
                    }
                }
            }
            self.packets.retire(flit.packet);
            self.release_input_vc(i, v, now);
            return true;
        }
        false
    }
}

/// Describe the simulated network to the (simulator-agnostic) telemetry
/// crate: channel endpoints plus a `ring` flag marking index-ring adjacency
/// (ring distance 1), which keys the exporter's ring-position heatmap.
fn telemetry_topo(graph: &Graph, cfg: &SimConfig) -> TelemetryTopo {
    let n = graph.node_count();
    let channels = (0..graph.channel_count())
        .map(|c| {
            let (src, dst) = graph.channel_endpoints(c);
            let d = src.abs_diff(dst);
            ChannelDesc {
                src: src as u32,
                dst: dst as u32,
                ring: d.min(n - d) == 1,
            }
        })
        .collect();
    TelemetryTopo {
        nodes: n,
        vcs: cfg.vcs as usize,
        channels,
        measure_start: cfg.warmup_cycles,
        measure_end: cfg.warmup_cycles + cfg.measure_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;
    use crate::routing::AdaptiveEscape;
    use dsn_core::ring::Ring;
    use dsn_core::torus::Torus;

    fn tiny_sim(rate: f64) -> Simulator {
        tiny_sim_engine(rate, EngineKind::default())
    }

    fn tiny_sim_engine(rate: f64, engine: EngineKind) -> Simulator {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig {
            engine,
            ..SimConfig::test_small()
        };
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        Simulator::new(g, cfg, routing, TrafficPattern::Uniform, rate, 42)
    }

    #[test]
    fn low_load_delivers_everything() {
        let stats = tiny_sim(0.002).run();
        assert!(stats.delivered_packets > 0, "nothing delivered");
        assert!(
            stats.delivery_ratio() > 0.95,
            "delivery ratio {} too low at near-zero load",
            stats.delivery_ratio()
        );
        assert!(stats.avg_latency_cycles > 0.0);
    }

    #[test]
    fn zero_load_latency_matches_analytical_floor() {
        // One measured hop costs header + link; the packet also pays
        // serialization (packet_flits) and final header + ejection.
        let stats = tiny_sim(0.0005).run();
        let cfg = SimConfig::test_small();
        let floor = (cfg.header_delay + cfg.link_delay + cfg.packet_flits as u64) as f64;
        assert!(
            stats.avg_latency_cycles >= floor,
            "latency {} below physical floor {floor}",
            stats.avg_latency_cycles
        );
    }

    #[test]
    fn higher_load_never_lowers_latency() {
        let low = tiny_sim(0.002).run();
        let high = tiny_sim(0.02).run();
        assert!(
            high.avg_latency_cycles >= low.avg_latency_cycles * 0.9,
            "latency should not improve with load: low {} high {}",
            low.avg_latency_cycles,
            high.avg_latency_cycles
        );
    }

    #[test]
    fn accepted_tracks_offered_below_saturation() {
        let stats = tiny_sim(0.01).run();
        let offered = stats.offered_flits_per_cycle_per_host;
        let accepted = stats.accepted_flits_per_cycle_per_host;
        assert!(
            (accepted - offered).abs() / offered < 0.15,
            "accepted {accepted} vs offered {offered}"
        );
    }

    #[test]
    fn dense_reference_agrees_with_event_default() {
        let dense = tiny_sim_engine(0.01, EngineKind::Dense).run();
        let event = tiny_sim_engine(0.01, EngineKind::Event).run();
        assert_eq!(dense, event, "engines diverged");
    }

    #[test]
    fn torus_with_dor_runs() {
        let torus = Arc::new(Torus::new(&[4, 4]).unwrap());
        let g = Arc::new(torus.graph().clone());
        let cfg = SimConfig::test_small();
        let routing = Arc::new(crate::routing::SourceRouted::torus_dor(torus));
        let sim = Simulator::new(g, cfg, routing, TrafficPattern::Uniform, 0.005, 7);
        let stats = sim.run();
        assert!(stats.delivered_packets > 0);
        assert!(stats.delivery_ratio() > 0.9);
    }

    #[test]
    fn wormhole_mode_delivers_at_low_load() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig {
            switching: crate::config::Switching::Wormhole,
            buffer_flits: 2,
            ..SimConfig::test_small()
        };
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let stats = Simulator::new(g, cfg, routing, TrafficPattern::Uniform, 0.002, 5).run();
        assert!(stats.delivery_ratio() > 0.95, "{}", stats.delivery_ratio());
        assert!(!stats.deadlock_suspected);
    }

    #[test]
    fn wormhole_saturates_no_later_than_vct() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let mk = |mode, buffer| {
            let cfg = SimConfig {
                switching: mode,
                buffer_flits: buffer,
                ..SimConfig::test_small()
            };
            let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
            Simulator::new(g.clone(), cfg, routing, TrafficPattern::Uniform, 0.05, 5).run()
        };
        let vct = mk(crate::config::Switching::VirtualCutThrough, 8);
        let worm = mk(crate::config::Switching::Wormhole, 2);
        assert!(
            worm.accepted_flits_per_cycle_per_host <= vct.accepted_flits_per_cycle_per_host * 1.05
        );
    }

    #[test]
    fn all_to_all_batch_completes() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let mut cfg = SimConfig::test_small();
        cfg.drain_cycles = 50_000; // plenty of horizon for the batch
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let stats =
            Simulator::with_workload(g, cfg, routing, crate::workload::Workload::all_to_all(8), 3)
                .run();
        let makespan = stats.completion_cycle.expect("batch must finish");
        assert!(makespan > 0);
        assert_eq!(stats.total_packets_all_time, 8 * 7);
        assert!(!stats.deadlock_suspected);
    }

    #[test]
    fn batch_makespan_scales_with_size() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let mut cfg = SimConfig::test_small();
        cfg.drain_cycles = 100_000;
        let run = |count: usize| {
            let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
            Simulator::with_workload(
                g.clone(),
                cfg.clone(),
                routing,
                crate::workload::Workload::ring_shift(8, 1, count),
                3,
            )
            .run()
            .completion_cycle
            .expect("finishes")
        };
        assert!(run(8) > run(1));
    }

    #[test]
    fn tracer_records_full_packet_lifecycles() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig::test_small();
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let sim =
            Simulator::new(g, cfg, routing, TrafficPattern::Uniform, 0.005, 11).with_tracer(1);
        let (stats, trace) = sim.run_traced();
        assert!(stats.delivered_packets > 0);
        assert!(!trace.records().is_empty());
        // Find a delivered packet and sanity-check its timeline ordering
        // and latency decomposition.
        let delivered: Vec<u32> = trace
            .records()
            .iter()
            .filter_map(|&(_, p, e)| matches!(e, TraceEvent::Delivered { .. }).then_some(p))
            .collect();
        assert!(!delivered.is_empty());
        for &p in delivered.iter().take(5) {
            let timeline = trace.packet_timeline(p);
            assert!(timeline.windows(2).all(|w| w[0].0 <= w[1].0), "time order");
            assert!(matches!(timeline[0].2, TraceEvent::Injected { .. }));
            let (queue, transit, total) = trace.latency_breakdown(p).expect("delivered");
            assert_eq!(queue + transit, total);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny_sim(0.01).run();
        let b = tiny_sim(0.01).run();
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.avg_latency_cycles, b.avg_latency_cycles);
    }

    #[test]
    fn memory_stays_bounded_on_open_runs() {
        let stats = tiny_sim(0.01).run();
        assert!(stats.total_packets_all_time > 50);
        assert!(
            stats.peak_in_flight_packets < stats.total_packets_all_time / 2,
            "peak in-flight {} should be far below total {}",
            stats.peak_in_flight_packets,
            stats.total_packets_all_time
        );
        assert!(stats.peak_buffered_flits > 0);
    }

    #[test]
    fn slab_recycles_slots() {
        let mut slab = PacketSlab::default();
        let mk = |uid| Packet {
            uid,
            src_host: 0,
            dest_host: 1,
            dest_sw: 0,
            created: 0,
            route: RouteState {
                ud_phase: dsn_route::updown::UdPhase::Up,
                path: None,
                idx: 0,
                alg: 0,
            },
            measured: false,
            attempt: 0,
            tag: PacketTag::None,
        };
        let a = slab.alloc(mk(0));
        let b = slab.alloc(mk(1));
        assert_ne!(a, b);
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.peak_live, 2);
        slab.retire(a);
        assert_eq!(slab.live(), 1);
        let c = slab.alloc(mk(2));
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(slab.get(c).uid, 2);
        assert_eq!(slab.peak_live, 2, "peak unchanged by recycling");
        assert_eq!(slab.total_created, 3);
    }
}
