//! Per-cycle-phase wall-time breakdown (`--phase-timing` /
//! `DSN_PHASE_TIMING=1`), generalizing the sharded driver's
//! `DSN_SHARD_TIMING` diagnostic to the dense and event cores.
//!
//! When enabled, the step loops stamp an [`Instant`] between phases and
//! accumulate the deltas here; the report is printed to stderr when the
//! run finishes. Timing never touches simulation state, so an instrumented
//! run produces bit-identical [`crate::RunStats`] — it only answers "where
//! do the cycles go", which is what drives the saturated hot-path layout
//! decisions documented in DESIGN.md §8.

use std::time::{Duration, Instant};

/// Wall-time accumulators for the per-cycle phases shared by both cores.
/// `wheel` covers the event core's slot drain (credit returns + link
/// arrivals + route expiries) and, on the dense core, the equivalent
/// credit/link front-polling; `route` is routing + VC allocation;
/// `arbitrate` is switch allocation + flit sends; `eject` the ejection
/// scan; `inject` covers batch, retry and host injection.
#[derive(Debug, Default)]
pub(crate) struct PhaseTimers {
    pub wheel: Duration,
    pub inject: Duration,
    pub route: Duration,
    pub arbitrate: Duration,
    pub eject: Duration,
    /// Cycles actually stepped (idle-skipped cycles count once).
    pub cycles: u64,
}

impl PhaseTimers {
    /// Advance the running stamp and credit the elapsed slice to the phase
    /// selected by `pick`.
    #[inline]
    pub fn mark(&mut self, last: &mut Instant, pick: Phase) {
        let now = Instant::now();
        let d = now - *last;
        *last = now;
        match pick {
            Phase::Wheel => self.wheel += d,
            Phase::Inject => self.inject += d,
            Phase::Route => self.route += d,
            Phase::Arbitrate => self.arbitrate += d,
            Phase::Eject => self.eject += d,
        }
    }

    /// Multi-line stderr report, one row per phase plus the total.
    pub fn report(&self, engine: &str) -> String {
        let total = self.wheel + self.inject + self.route + self.arbitrate + self.eject;
        let pct = |d: Duration| {
            if total.is_zero() {
                0.0
            } else {
                100.0 * d.as_secs_f64() / total.as_secs_f64()
            }
        };
        let row = |name: &str, d: Duration| {
            format!(
                "  {name:<12} {:>10.3}s  {:>5.1}%\n",
                d.as_secs_f64(),
                pct(d)
            )
        };
        let mut out = format!(
            "[phase-timing] engine={engine} cycles={} ({:.0} cycles/s in-phase)\n",
            self.cycles,
            if total.is_zero() {
                0.0
            } else {
                self.cycles as f64 / total.as_secs_f64()
            }
        );
        out.push_str(&row("wheel-drain", self.wheel));
        out.push_str(&row("inject", self.inject));
        out.push_str(&row("route", self.route));
        out.push_str(&row("arbitrate", self.arbitrate));
        out.push_str(&row("eject", self.eject));
        out.push_str(&format!(
            "  {:<12} {:>10.3}s\n",
            "total",
            total.as_secs_f64()
        ));
        out
    }
}

/// Which accumulator a [`PhaseTimers::mark`] call credits.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Phase {
    Wheel,
    Inject,
    Route,
    Arbitrate,
    Eject,
}

/// Whether the `DSN_PHASE_TIMING` environment switch is on (any value but
/// `0`); `--phase-timing` on the bench binaries sets it for the process so
/// sims constructed deep inside sweeps inherit it.
pub(crate) fn env_enabled() -> bool {
    std::env::var_os("DSN_PHASE_TIMING").is_some_and(|v| v != *"0")
}
