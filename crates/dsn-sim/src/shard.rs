//! Sharded parallel driver over the event core: bounded-lag conservative
//! synchronization ([`crate::config::EngineKind::Sharded`]).
//!
//! Switches are partitioned into `workers` contiguous blocks, each owned by
//! one shard. A shard is a complete [`Simulator`] running the event core
//! over the whole graph, but it only ever touches the state it owns:
//!
//! * an *input unit* (channel input buffer or injection queue) belongs to
//!   the shard owning the switch it sits at (`input_node`);
//! * a directed channel's *output* state (credits, owner, round-robin
//!   pointer) belongs to the shard owning its source switch — the only
//!   shard that ever runs `grant_channel` for it;
//! * a host belongs to the shard owning its switch; every shard builds the
//!   same per-host RNG streams (identical seed), but only draws from the
//!   hosts it owns, so each host's injection sequence is bit-identical to
//!   the single-thread run.
//!
//! The only coupling between shards is a flit crossing a *cut channel*
//! (endpoints owned by different shards) and the matching credit return.
//! Both have a hard lower bound on their latency — `link_delay.max(1)`
//! cycles for flits, `credit_delay.max(1)` for credits — which is the
//! classic conservative-PDES *lookahead*. Shards therefore advance in
//! lockstep windows of
//! `W = min(link_delay.max(1), credit_delay.max(1))` cycles: any
//! cross-shard event produced inside window `k` (send at `now <= win_end-1`,
//! arrival at `now + delay >= win_end`) lands at or after the window
//! boundary, so exchanging mailboxes *between* windows can never deliver an
//! event into a shard's past. With the paper's 20 ns link latency
//! (8 cycles) the default window is 8 cycles of fully independent parallel
//! execution per synchronization. When the shards' *activity horizons*
//! (active units, pending wheel events, scheduled injections, staged
//! releases) prove that no shard can act before some cycle `a > win_start`,
//! the window extends to `a + W` — sends still start at or after `a`, so
//! arrivals still land at or after the boundary — collapsing idle and
//! drain-tail stretches into a single synchronization.
//!
//! Determinism and bit-identity with the single-thread event engine
//! (`tests/shard_equivalence.rs`) rest on three mechanisms:
//!
//! 1. **Deterministic mailbox drain.** At each boundary the coordinator
//!    drains each shard's outbound mailbox in shard-index order, messages
//!    in send order — a fixed order independent of thread scheduling — and
//!    schedules them into the destination shards' timing wheels. No sort is
//!    needed for bit-identity: within one arrival cycle the drain order is
//!    unobservable, because the engine applies *all* of a cycle's credits
//!    before anything reads a credit counter (phase 1 before phase 4),
//!    lands each arrival in its own `(channel, vc)` input buffer (a channel
//!    serializes at most one flit per cycle), and collects allocation
//!    eligibility in an order-free bitset. Per-channel FIFO order — the one
//!    order that *is* observable, because body flits reuse their head's
//!    slab binding — is preserved, since a single source shard emits each
//!    channel's messages in cycle order.
//! 2. **Integer-exact stats replay.** Every per-shard
//!    [`crate::stats::StatsCollector`] holds only integer sums, extrema and
//!    histograms, merged exactly at the end (floats appear once, in
//!    `finish`). Whole-network quantities that are *not* per-shard sums —
//!    peak in-flight packets, peak buffered flits, the stall watchdog and
//!    `last_progress` — are reconstructed exactly from tiny per-cycle
//!    deltas ([`CycleLog`]) each shard records: within one cycle the engine
//!    creates packets (phase 3) strictly before it delivers them (phase 5b)
//!    and pushes flits (phases 2–3) strictly before it pops them (phase 5),
//!    so `peak = max(peak, level + inflow)` per cycle reproduces the
//!    single-thread high-water marks bit for bit.
//! 3. **Telemetry replay.** When telemetry is on, shards log raw hook
//!    calls ([`dsn_telemetry::HookEvent`]) instead of aggregating. The
//!    coordinator merges the logs each window, sorts by
//!    `(cycle, kind, args)` — kind ranks encode the engine's phase order —
//!    and replays into one recorder. Packet slab slots are shard-local, so
//!    a replay-id table (fed by `EXPORT`/`IMPORT` binder records spliced in
//!    at cross-shard handoffs) rebinds every event to a stable identity;
//!    the report carries no packet ids, so the result is byte-identical.
//!
//! A packet migrates between slabs when its head flit crosses a cut
//! channel: the head's [`Packet`] clone travels in a sidecar vector (its
//! route state is final for the hop — `on_hop` ran at allocation), keeping
//! the per-flit [`LinkMsg`] small; the receiver imports it (without
//! touching the created/peak counters) and remaps the body flits' slab
//! indices as they arrive; the sender retires its local copy when the tail
//! crosses.
//!
//! Runs with a fault plan use instantaneous global operations (zero-lag
//! credit refunds on drops) that have no lookahead, and the per-packet
//! tracer wants globally stable uids — both fall back to the single-thread
//! event path, as does a resolved worker count of 1. The partition depends
//! only on `cfg.workers` (0 = one shard per rayon worker), never on thread
//! scheduling, so a fixed worker count gives bit-identical results on any
//! machine.

use crate::engine::{Flit, Packet, Simulator};
use crate::workload::Workload;
use dsn_telemetry::{hook_kind, HookEvent, Telemetry};
use rayon::prelude::*;
use std::collections::{HashMap, VecDeque};

/// A flit crossing a cut channel, mailed at the next window boundary.
/// Kept payload-free (head packets travel in [`ShardCtx::out_packets`], in
/// the same order) so the per-flit mailbox traffic stays small.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkMsg {
    /// Arrival cycle at the downstream input (`send + link_delay.max(1)`).
    pub t: u64,
    pub ch: u32,
    pub vc: u8,
    /// Head flit: the next unconsumed [`ShardCtx::out_packets`] entry is
    /// this packet; body flits reuse the binding their head established.
    pub head: bool,
    /// The flit, with its *source-shard* slab index (remapped on import).
    pub flit: Flit,
}

/// A credit return crossing a cut channel (flows opposite to the flits:
/// from the shard owning the channel's sink back to the one owning its
/// source, where the output-VC credit counter lives).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CreditMsg {
    pub t: u64,
    pub ch: u32,
    pub vc: u8,
}

/// Per-cycle deltas a shard records so the coordinator can reconstruct the
/// whole-network peaks and the stall watchdog exactly (see module docs).
/// Cycles where every field would be zero are not recorded.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CycleLog {
    pub cycle: u64,
    /// Packets created (phase 3 — strictly before this cycle's deliveries).
    pub created: u32,
    /// Packets delivered (phase 5b).
    pub delivered: u32,
    /// Flits pushed into input buffers (phases 2–3, before any pop).
    pub pushes: u32,
    /// Flits popped from input buffers (phase 5).
    pub pops: u32,
    /// A flit moved on this shard this cycle (`last_progress == cycle`).
    pub progress: bool,
}

/// Sentinel for [`ShardCtx::incoming`]: no packet mid-stream on this VC.
const NO_INCOMING: u32 = u32::MAX;

/// Shard-membership context installed on each shard simulator
/// (`Simulator::shard`). The engine's shared mutation helpers consult it to
/// divert cross-shard sends and credits into the mailboxes.
#[derive(Debug)]
pub(crate) struct ShardCtx {
    /// Per channel: flit arrivals belong to another shard (cut channel).
    pub remote_link: Vec<bool>,
    /// Per channel: credit returns belong to another shard. Identical to
    /// `remote_link` today (both mark cut channels); kept separate so the
    /// two call sites stay self-describing.
    pub remote_credit: Vec<bool>,
    /// Per host: this shard owns it (only owned hosts inject).
    pub local_host: Vec<bool>,
    /// Outbound flits accumulated during the current window.
    pub out_links: Vec<LinkMsg>,
    /// Packets for this window's head flits, in [`ShardCtx::out_links`]
    /// order (the payload sidecar).
    pub out_packets: Vec<Packet>,
    /// Outbound credits accumulated during the current window.
    pub out_credits: Vec<CreditMsg>,
    /// Running count of input-buffer pushes (pops are derived from the
    /// buffered-flits level around each step).
    pub pushes: u64,
    /// This window's per-cycle deltas, cycle-ascending.
    pub log: Vec<CycleLog>,
    /// Per `(channel * nvc + vc)`: local slab index of the packet currently
    /// streaming in from another shard (binds body flits to the imported
    /// head).
    pub incoming: Vec<u32>,
}

/// Whole-network quantities reconstructed from the merged [`CycleLog`]s.
#[derive(Debug, Default)]
struct Replay {
    live: u64,
    peak_live: u64,
    buffered: u64,
    peak_buffered: u64,
    created: u64,
    delivered: u64,
    cur_stall: u64,
    longest_stall: u64,
    last_progress: u64,
}

impl Replay {
    /// Fold one cycle's merged deltas, mirroring the engine's intra-cycle
    /// order (creates before deliveries, pushes before pops) and its
    /// watchdog rule.
    fn cycle(
        &mut self,
        c: u64,
        created: u64,
        delivered: u64,
        pushes: u64,
        pops: u64,
        progress: bool,
    ) {
        self.peak_live = self.peak_live.max(self.live + created);
        self.live = self.live + created - delivered;
        self.peak_buffered = self.peak_buffered.max(self.buffered + pushes);
        self.buffered = self.buffered + pushes - pops;
        self.created += created;
        self.delivered += delivered;
        if progress {
            self.last_progress = c;
        }
        if progress || self.live == 0 {
            self.cur_stall = 0;
        } else {
            self.cur_stall += 1;
            self.longest_stall = self.longest_stall.max(self.cur_stall);
        }
    }

    /// Fold a run of `len` cycles no shard logged anything for (no
    /// creates, deliveries, flit movement or progress) in O(1): levels are
    /// unchanged, and the watchdog either idles (empty network) or counts
    /// the whole run as one stall streak — exactly what folding
    /// [`Replay::cycle`] with all-zero deltas `len` times would do.
    fn silent_gap(&mut self, len: u64) {
        if len == 0 {
            return;
        }
        if self.live == 0 {
            self.cur_stall = 0;
        } else {
            self.cur_stall += len;
            self.longest_stall = self.longest_stall.max(self.cur_stall);
        }
    }
}

/// Replay-id allocator + per-shard slot bindings for telemetry replay.
/// Shard slab slots are local and recycled; replay ids are a parallel
/// recycled namespace kept consistent across shard boundaries by the
/// `EXPORT`/`IMPORT` binder records.
struct TelReplay {
    /// Per shard: local slab slot -> replay id.
    maps: Vec<HashMap<u32, u32>>,
    /// Replay ids of packets mid-flight between shards, keyed by
    /// `(channel << 8) | vc`, in export order (FIFO — a channel VC streams
    /// one packet at a time, and the replay sorts all events by cycle, so
    /// exports and imports on one channel VC interleave in wire order).
    transit: HashMap<u32, VecDeque<u32>>,
    free: Vec<u32>,
    next: u32,
}

impl TelReplay {
    fn new(shards: usize) -> Self {
        TelReplay {
            maps: (0..shards).map(|_| HashMap::new()).collect(),
            transit: HashMap::new(),
            free: Vec::new(),
            next: 0,
        }
    }

    fn fresh_id(&mut self) -> u32 {
        self.free.pop().unwrap_or_else(|| {
            let id = self.next;
            self.next += 1;
            id
        })
    }

    /// Replay one logged hook into the coordinator's recorder. `s` is the
    /// shard the event came from (selects the slot-binding map).
    fn replay(&mut self, e: &HookEvent, s: usize, sink: &mut Telemetry) {
        match e.kind {
            hook_kind::IMPORT => {
                let rid = self
                    .transit
                    .get_mut(&((e.a << 8) | e.b))
                    .and_then(|q| q.pop_front())
                    .expect("IMPORT without a matching EXPORT");
                self.maps[s].insert(e.d, rid);
            }
            hook_kind::EXPORT => {
                let rid = self.maps[s][&e.d];
                self.transit
                    .entry((e.a << 8) | e.b)
                    .or_default()
                    .push_back(rid);
            }
            hook_kind::CREATED => {
                let rid = self.fresh_id();
                self.maps[s].insert(e.a, rid);
                sink.on_created(rid, e.b, e.c, e.now);
            }
            hook_kind::LINK_ARRIVAL => {
                sink.on_link_arrival(e.a, e.b, e.c, self.maps[s][&e.d], e.flag, e.now);
            }
            hook_kind::INJECT_DEPTH => sink.on_inject_depth(e.a, e.now),
            hook_kind::ALLOC_GRANTED => sink.on_alloc_granted(self.maps[s][&e.a], e.now),
            hook_kind::ALLOC_BLOCKED => sink.on_alloc_blocked(e.a, e.now),
            hook_kind::FLIT_SENT => sink.on_flit_sent(e.a, self.maps[s][&e.b], e.flag, e.now),
            hook_kind::EJECTED => {
                let rid = self.maps[s][&e.a];
                sink.on_ejected(rid, e.flag, e.now);
                if e.flag {
                    // Delivered: the id may be reused by a later creation
                    // (which always sorts after this event — creations of a
                    // cycle replay before its ejections, and the freeing
                    // slab slot cannot be re-allocated until the next one).
                    self.free.push(rid);
                }
            }
            hook_kind::DROPPED => {
                let rid = self.maps[s][&e.a];
                sink.on_dropped(rid, e.now);
                self.free.push(rid);
            }
            // Flow completions carry no slab slot, so no id remapping.
            hook_kind::FLOW_COMPLETED => sink.on_flow_completed(e.a, e.b, e.c, e.now),
            k => unreachable!("unknown hook kind {k}"),
        }
    }
}

/// Contiguous-block partition: switch -> owning shard. The first `n % p`
/// shards take one extra switch.
fn partition(n: usize, p: usize) -> Vec<u32> {
    let (base, rem) = (n / p, n % p);
    let mut owner = Vec::with_capacity(n);
    for s in 0..p {
        let len = base + usize::from(s < rem);
        owner.extend(std::iter::repeat_n(s as u32, len));
    }
    owner
}

/// Resolve the configured worker count: 0 = one shard per rayon worker;
/// always clamped to the switch count.
fn resolve_workers(sim: &Simulator) -> usize {
    let req = match sim.cfg.workers {
        0 => rayon::current_num_threads(),
        w => w,
    };
    req.clamp(1, sim.graph.node_count())
}

/// Advance one shard to the window boundary, recording per-cycle deltas.
fn run_window(sim: &mut Simulator, win_end: u64) {
    while sim.now < win_end {
        let c = sim.now;
        let buf0 = sim.buffered_flits;
        let created0 = sim.packets.total_created;
        let delivered0 = sim.delivered_all_time;
        let pushes0 = sim.shard.as_ref().expect("shard ctx").pushes;
        crate::event::step(sim, win_end);
        let pushes = sim.shard.as_ref().expect("shard ctx").pushes - pushes0;
        // No pop hook needed: pops = level + inflow - new level.
        let pops = buf0 + pushes - sim.buffered_flits;
        let created = sim.packets.total_created - created0;
        let delivered = sim.delivered_all_time - delivered0;
        let progress = sim.last_progress == c;
        if created != 0 || delivered != 0 || pushes != 0 || pops != 0 || progress {
            sim.shard.as_mut().expect("shard ctx").log.push(CycleLog {
                cycle: c,
                created: created as u32,
                delivered: delivered as u32,
                pushes: pushes as u32,
                pops: pops as u32,
                progress,
            });
        }
    }
}

/// Run `sim` to `total` cycles under the sharded driver. Falls back to the
/// single-thread event path for worker count 1, fault plans (their global
/// zero-lag drop refunds have no lookahead) and attached tracers (their
/// uids are global creation-order).
pub(crate) fn run(sim: &mut Simulator, total: u64) {
    let workers = resolve_workers(sim);
    if workers <= 1 || !sim.cfg.fault_plan.is_empty() || sim.tracer.is_some() {
        crate::event::prepare(sim);
        while sim.now < total {
            crate::event::step(sim, total);
            if sim.batch_done() {
                break;
            }
        }
        return;
    }

    let n = sim.graph.node_count();
    let channels = sim.graph.channel_count();
    let nvc = sim.nvc;
    let hosts = sim.hosts();
    let hps = sim.cfg.hosts_per_switch;
    let owner = partition(n, workers);
    let window = sim.cfg.link_delay.max(1).min(sim.cfg.credit_delay.max(1));
    let telemetry_on = sim.telemetry.enabled();

    let cut: Vec<bool> = (0..channels)
        .map(|c| {
            let (src, dst) = sim.graph.channel_endpoints(c);
            owner[src] != owner[dst]
        })
        .collect();

    let mut shard_cfg = sim.cfg.clone();
    shard_cfg.engine = crate::config::EngineKind::Event;
    shard_cfg.telemetry = None;

    let mut shards: Vec<Simulator> = (0..workers)
        .map(|s| {
            let workload = match &sim.workload_spec {
                Workload::Open { .. } => Workload::Open {
                    pattern: sim
                        .pattern
                        .clone()
                        .expect("open workload has a traffic pattern"),
                    packets_per_cycle_per_host: sim.open_rate,
                },
                // The coordinator's spec keeps an empty packet list (the
                // real batch lives in pending_batch); rebuild each shard's
                // share from there.
                Workload::Closed { .. } => Workload::Closed {
                    packets: sim
                        .pending_batch
                        .iter()
                        .copied()
                        .filter(|&(src, _)| owner[src / hps] == s as u32)
                        .collect(),
                },
                // Flow and staged workloads replicate the spec verbatim:
                // per-host RNG streams are seeded independently, and only
                // a shard's local hosts ever fire, so the replicas stay
                // bit-identical to the single-thread sources.
                w @ (Workload::Flows { .. } | Workload::Incast { .. } | Workload::Staged(_)) => {
                    w.clone()
                }
            };
            let mut sh = Simulator::with_workload(
                sim.graph.clone(),
                shard_cfg.clone(),
                sim.routing.clone(),
                workload,
                sim.seed,
            );
            sh.routing_cache = sim.routing_cache.clone();
            if telemetry_on {
                sh.telemetry = Telemetry::log();
            }
            sh.shard = Some(Box::new(ShardCtx {
                remote_link: cut.clone(),
                remote_credit: cut.clone(),
                local_host: (0..hosts).map(|h| owner[h / hps] == s as u32).collect(),
                out_links: Vec::new(),
                out_packets: Vec::new(),
                out_credits: Vec::new(),
                pushes: 0,
                log: Vec::new(),
                incoming: vec![NO_INCOMING; channels * nvc],
            }));
            if let Workload::Staged(spec) = &sim.workload_spec {
                // Stage releases of host h are entirely local to h's owning
                // shard (its deliveries land there and its sends originate
                // there), so each shard keeps only its hosts' cycle-0 seeds
                // and counts only its hosts' sends toward batch completion.
                sh.staged_ready
                    .retain(|&h| owner[h as usize / hps] == s as u32);
                sh.closed_total = Some(spec.total_packets_from(|h| owner[h / hps] == s as u32));
            }
            crate::event::prepare(&mut sh);
            sh
        })
        .collect();

    let mut rp = Replay::default();
    let mut tel = telemetry_on.then(|| TelReplay::new(workers));
    let mut events: Vec<(HookEvent, usize)> = Vec::new();
    let mut logs: Vec<Vec<CycleLog>> = vec![Vec::new(); workers];
    let mut cursors = vec![0usize; workers];
    // Scratch buffers swapped with each shard's mailboxes during the
    // exchange (always empty outside it; the swap preserves capacity).
    let mut links: Vec<LinkMsg> = Vec::new();
    let mut packets: Vec<Packet> = Vec::new();
    let mut credits: Vec<CreditMsg> = Vec::new();
    // Final `now` when a closed batch drains before the horizon (the
    // single-thread loop breaks right after the delivering cycle).
    let mut done_now = None;

    let timing = std::env::var_os("DSN_SHARD_TIMING").is_some();
    let (mut t_run, mut t_exch, mut t_stats) = (
        std::time::Duration::ZERO,
        std::time::Duration::ZERO,
        std::time::Duration::ZERO,
    );
    let mut win_start = 0u64;
    while win_start < total {
        // Horizon-proven window extension: the exchange below has drained
        // every mailbox, so no shard can act — in particular, emit a
        // cut-crossing flit or credit — before `a`, the minimum of the
        // shards' activity horizons (active units, wheel events, scheduled
        // injections, staged releases). Any cross-shard event produced at
        // `t >= a` arrives at `t + delay >= a + W`, so the window may run
        // to `a + W` without ever delivering into a shard's past. This
        // subsumes the old all-quiescent idle fast-forward: with every
        // shard silent, `a` is the earliest scheduled injection and one
        // synchronization jumps the whole gap.
        let a = shards
            .iter()
            .map(|sh| {
                // Staged releases and the cycle-0 closed batch act outside
                // the event state's bookkeeping.
                if sh.staged_ready.is_empty() && sh.pending_batch.is_empty() {
                    sh.ev
                        .as_ref()
                        .expect("event state")
                        .activity_horizon(sh.now)
                } else {
                    sh.now
                }
            })
            .min()
            .expect("at least two shards");
        let win_end = (win_start + window)
            .max(a.saturating_add(window))
            .min(total);
        let t0 = std::time::Instant::now();
        shards.par_iter_mut().for_each(|sh| run_window(sh, win_end));
        if timing {
            t_run += t0.elapsed();
        }

        // Telemetry replay: merge this window's logs, sort into the
        // single-thread hook order, replay into the coordinator's recorder.
        if let Some(tel) = &mut tel {
            events.clear();
            for (s, sh) in shards.iter_mut().enumerate() {
                events.extend(sh.telemetry.drain_log().into_iter().map(|e| (e, s)));
            }
            events.sort_unstable();
            for (e, s) in &events {
                tel.replay(e, *s, &mut sim.telemetry);
            }
        }

        // Mailbox exchange, shard by shard in send order — deterministic
        // (fixed shard iteration, per-shard FIFO) and order-insensitive
        // within an arrival cycle (see module docs), so no sorting pass.
        // Every message arrives at t in [win_end, win_end + delay), i.e. in
        // the destination's future and within its wheel horizon. The
        // buffers are taken out whole and handed back so their capacity
        // survives across windows.
        let t0 = std::time::Instant::now();
        for src_shard in 0..workers {
            {
                let sc = shards[src_shard].shard.as_mut().expect("shard ctx");
                std::mem::swap(&mut links, &mut sc.out_links);
                std::mem::swap(&mut packets, &mut sc.out_packets);
                std::mem::swap(&mut credits, &mut sc.out_credits);
            }
            let mut next_packet = packets.drain(..);
            for msg in links.drain(..) {
                let (_, dst) = sim.graph.channel_endpoints(msg.ch as usize);
                let sh = &mut shards[owner[dst] as usize];
                let key = msg.ch as usize * nvc + msg.vc as usize;
                let mut flit = msg.flit;
                if msg.head {
                    let p = next_packet.next().expect("head flit without payload");
                    let local = sh.packets.import(p);
                    sh.shard.as_mut().expect("shard ctx").incoming[key] = local;
                    flit.packet = local;
                    if telemetry_on {
                        // Binder for the replay-id table, stamped with the
                        // arrival cycle (sorts before the arrival hook).
                        sh.telemetry.push_event(HookEvent {
                            now: msg.t,
                            kind: hook_kind::IMPORT,
                            a: msg.ch,
                            b: msg.vc as u32,
                            c: 0,
                            d: local,
                            flag: false,
                        });
                    }
                } else {
                    flit.packet = sh.shard.as_ref().expect("shard ctx").incoming[key];
                    debug_assert_ne!(flit.packet, NO_INCOMING, "body flit before its head");
                }
                sh.ev.as_mut().expect("event state").schedule_link(
                    msg.t,
                    msg.ch as usize,
                    flit,
                    msg.vc,
                );
            }
            debug_assert!(next_packet.next().is_none(), "payload without a head flit");
            drop(next_packet);
            for msg in credits.drain(..) {
                let (src, _) = sim.graph.channel_endpoints(msg.ch as usize);
                shards[owner[src] as usize]
                    .ev
                    .as_mut()
                    .expect("event state")
                    .schedule_credit(msg.t, msg.ch as usize, msg.vc);
            }
            let sc = shards[src_shard].shard.as_mut().expect("shard ctx");
            std::mem::swap(&mut links, &mut sc.out_links);
            std::mem::swap(&mut packets, &mut sc.out_packets);
            std::mem::swap(&mut credits, &mut sc.out_credits);
        }

        if timing {
            t_exch += t0.elapsed();
        }
        let t0 = std::time::Instant::now();
        // Stats replay: k-way merge this window's per-cycle deltas over
        // the logged (active) cycles only, folding silent gaps in O(1) —
        // extended windows can span thousands of idle cycles.
        for (s, sh) in shards.iter_mut().enumerate() {
            let sc = sh.shard.as_mut().expect("shard ctx");
            logs[s].clear();
            logs[s].append(&mut sc.log);
            cursors[s] = 0;
        }
        let mut c = win_start;
        while c < win_end {
            let next = logs
                .iter()
                .zip(&cursors)
                .filter_map(|(log, &cur)| log.get(cur).map(|e| e.cycle))
                .min();
            let Some(nc) = next else {
                rp.silent_gap(win_end - c);
                break;
            };
            debug_assert!(nc < win_end, "shard logged past its window");
            rp.silent_gap(nc - c);
            let (mut created, mut delivered, mut pushes, mut pops) = (0u64, 0u64, 0u64, 0u64);
            let mut progress = false;
            for (s, log) in logs.iter().enumerate() {
                if let Some(e) = log.get(cursors[s]) {
                    if e.cycle == nc {
                        cursors[s] += 1;
                        created += e.created as u64;
                        delivered += e.delivered as u64;
                        pushes += e.pushes as u64;
                        pops += e.pops as u64;
                        progress |= e.progress;
                    }
                }
            }
            rp.cycle(nc, created, delivered, pushes, pops, progress);
            c = nc + 1;
        }
        if timing {
            t_stats += t0.elapsed();
        }

        // Closed-batch termination, exactly where the single-thread loop
        // breaks: right after the cycle that delivered the last packet
        // (cycles past it are event-free, so the replay state is final).
        if sim.closed_total.is_some_and(|t| rp.created >= t) && rp.live == 0 {
            done_now = Some(rp.last_progress + 1);
            break;
        }

        win_start = win_end;
    }

    if timing {
        eprintln!("shard timing: run {t_run:?} exchange {t_exch:?} stats {t_stats:?}");
    }
    if sim.phase_timers.is_some() {
        for (s, sh) in shards.iter().enumerate() {
            if let Some(t) = &sh.phase_timers {
                eprint!("{}", t.report(&format!("shard{s}")));
            }
        }
    }
    // Fold the shards into the coordinator: integer-exact stat merges plus
    // the replay-reconstructed whole-network quantities.
    sim.now = done_now.unwrap_or(total);
    for sh in shards {
        for (dst, src) in sim.channel_flits.iter_mut().zip(&sh.channel_flits) {
            *dst += *src;
        }
        sim.delivered_all_time += sh.delivered_all_time;
        sim.packets.total_created += sh.packets.total_created;
        sim.stats.merge(sh.stats);
    }
    debug_assert_eq!(rp.created, sim.packets.total_created);
    debug_assert_eq!(rp.delivered, sim.delivered_all_time);
    sim.packets.peak_live = rp.peak_live;
    sim.peak_buffered_flits = rp.peak_buffered;
    sim.longest_stall = rp.longest_stall;
    sim.last_progress = rp.last_progress;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let owner = partition(10, 3);
        assert_eq!(owner, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        let owner = partition(4, 8);
        assert_eq!(owner, vec![0, 1, 2, 3]);
        assert_eq!(partition(5, 1), vec![0; 5]);
    }

    #[test]
    fn replay_tracks_intra_cycle_peaks() {
        let mut rp = Replay::default();
        // Cycle 0: 3 created, 1 delivered -> peak sees all 3 live first.
        rp.cycle(0, 3, 1, 12, 4, true);
        assert_eq!(rp.peak_live, 3);
        assert_eq!(rp.live, 2);
        assert_eq!(rp.peak_buffered, 12);
        assert_eq!(rp.buffered, 8);
        // Two silent cycles with packets live -> the watchdog counts.
        rp.cycle(1, 0, 0, 0, 0, false);
        rp.cycle(2, 0, 0, 0, 0, false);
        assert_eq!(rp.longest_stall, 2);
        // Progress resets it and advances last_progress.
        rp.cycle(3, 0, 2, 0, 8, true);
        assert_eq!(rp.cur_stall, 0);
        assert_eq!(rp.last_progress, 3);
        assert_eq!(rp.live, 0);
        assert_eq!(rp.buffered, 0);
        // Empty network: no stall even without progress.
        rp.cycle(4, 0, 0, 0, 0, false);
        assert_eq!(rp.longest_stall, 2);
    }

    #[test]
    fn replay_ids_recycle_across_shards() {
        let mut t = TelReplay::new(2);
        let mut sink = Telemetry::Off;
        let ev = |kind, now, a, b, c, d, flag| HookEvent {
            now,
            kind,
            a,
            b,
            c,
            d,
            flag,
        };
        // Shard 0 creates local slot 5, exports it on channel 3 vc 1;
        // shard 1 imports it as local slot 0.
        t.replay(&ev(hook_kind::CREATED, 0, 5, 0, 1, 0, false), 0, &mut sink);
        assert_eq!(t.maps[0][&5], 0);
        t.replay(&ev(hook_kind::EXPORT, 2, 3, 1, 0, 5, false), 0, &mut sink);
        t.replay(&ev(hook_kind::IMPORT, 4, 3, 1, 0, 0, false), 1, &mut sink);
        assert_eq!(t.maps[1][&0], 0, "identity survives the hop");
        // Delivery frees the id; the next creation reuses it.
        t.replay(&ev(hook_kind::EJECTED, 9, 0, 0, 0, 0, true), 1, &mut sink);
        t.replay(&ev(hook_kind::CREATED, 10, 7, 0, 1, 0, false), 0, &mut sink);
        assert_eq!(t.maps[0][&7], 0, "freed replay id is recycled");
    }
}
