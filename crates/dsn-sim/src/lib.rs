//! # dsn-sim — cycle-driven flit-level interconnection network simulator
//!
//! Reimplements the evaluation vehicle of the DSN paper's Section VII: an
//! input-queued, virtual-cut-through, credit-flow-controlled network
//! simulator with 4 virtual channels, ~100 ns per-hop header latency, 20 ns
//! link delay, 33-flit packets on 96 Gbps links — plus the paper's traffic
//! patterns (uniform, bit reversal, neighboring) and routing schemes
//! (topology-agnostic adaptive with up*/down* escape, plus DSN custom
//! routing and torus DOR for the custom-routing comparison).
//!
//! Beyond the paper's setup the simulator also provides: wormhole switching
//! ([`config::Switching`]), closed batch workloads for collective-exchange
//! makespans ([`workload::Workload`]), per-packet event tracing
//! ([`PacketTracer`]) and zero-cost-when-off telemetry recording
//! ([`TelemetryConfig`] / [`engine::Simulator::run_with_telemetry`], both
//! from the `dsn-telemetry` crate), a whole-network stall watchdog that
//! detects real routing deadlocks, per-channel utilization accounting,
//! bisection saturation search ([`sweep::find_saturation`]), and the
//! paper's future-work routing ([`routing::MinimalAdaptiveDsn`]).
//!
//! ```no_run
//! use std::sync::Arc;
//! use dsn_core::dsn::Dsn;
//! use dsn_sim::{config::SimConfig, engine::Simulator, routing::AdaptiveEscape,
//!               traffic::TrafficPattern};
//!
//! let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
//! let cfg = SimConfig::default();
//! let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
//! let sim = Simulator::new(g, cfg, routing, TrafficPattern::Uniform, 0.005, 42);
//! let stats = sim.run();
//! println!("avg latency {:.0} ns", stats.avg_latency_ns);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod config;
pub mod engine;
mod event;
pub mod fault;
mod flat;
pub mod flow;
mod inject;
pub mod routing;
mod shard;
pub mod stats;
pub mod sweep;
mod timing;
pub mod traffic;
pub mod workload;

pub use cache::RoutingCache;
pub use config::{EngineKind, RoutingTables, SimConfig, Switching};
pub use dsn_telemetry::{
    PacketTracer, Telemetry, TelemetryConfig, TelemetryReport, TraceEvent, TraceRecord,
};
pub use engine::Simulator;
pub use engine::ALGORITHMIC_AUTO_THRESHOLD;
pub use fault::{FaultEvent, FaultKind, FaultPlan, RetryPolicy, SalvagePolicy};
pub use flow::{FlowArrivals, FlowSizeDist, StagedSpec};
pub use routing::{
    AdaptiveEscape, DsnAlgorithmic, FlatRouting, MinimalAdaptiveDsn, SimRouting, SourceRouted,
    UpDownRouting,
};
pub use stats::{FlowClassStats, RunStats};
pub use sweep::{
    find_saturation, find_saturation_cached, find_saturation_with, load_sweep, load_sweep_cached,
    load_sweep_with, paper_load_grid, SweepResult,
};
pub use traffic::TrafficPattern;
pub use workload::Workload;
