//! One-stop topology summary used by the examples and figure binaries:
//! bundles degree, path, and connectivity metrics for a built topology.

use crate::apsp::{path_stats, PathStats};
use dsn_core::graph::Graph;

/// The Moore bound: the maximum number of nodes a graph of maximum degree
/// `d` and diameter `k` can possibly have —
/// `1 + d * ((d-1)^k - 1) / (d - 2)` for `d > 2`, `2k + 1` for `d = 2`.
/// Saturates at `u64::MAX` for huge parameters.
pub fn moore_bound(d: usize, k: u32) -> u64 {
    match d {
        0 => 1,
        1 => 2,
        2 => 2 * k as u64 + 1,
        _ => {
            let mut total: u64 = 1;
            let mut frontier: u64 = d as u64;
            for _ in 0..k {
                total = total.saturating_add(frontier);
                frontier = frontier.saturating_mul(d as u64 - 1);
            }
            total
        }
    }
}

/// Moore efficiency of a graph: `n / moore_bound(max_degree, diameter)` in
/// `(0, 1]`. A value near 1 means the topology is near the theoretical
/// optimum trade-off between degree and diameter.
pub fn moore_efficiency(g: &Graph, diameter: u32) -> f64 {
    let bound = moore_bound(g.max_degree(), diameter);
    if bound == 0 {
        0.0
    } else {
        g.node_count() as f64 / bound as f64
    }
}

/// A compact metrics record for a single topology instance.
#[derive(Debug, Clone)]
pub struct TopologyReport {
    /// Display name.
    pub name: String,
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Minimum node degree.
    pub min_degree: usize,
    /// Average node degree.
    pub avg_degree: f64,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Hop-count statistics from the exact APSP sweep.
    pub paths: PathStats,
}

impl TopologyReport {
    /// Analyze `graph` under the given display name.
    pub fn new(name: impl Into<String>, graph: &Graph) -> Self {
        TopologyReport {
            name: name.into(),
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            min_degree: graph.min_degree(),
            avg_degree: graph.avg_degree(),
            max_degree: graph.max_degree(),
            paths: path_stats(graph),
        }
    }

    /// Render a single aligned table row (pairs with [`Self::header`]).
    pub fn row(&self) -> String {
        format!(
            "{:<24} {:>6} {:>7} {:>4} {:>6.2} {:>4} {:>5} {:>7.3}",
            self.name,
            self.nodes,
            self.edges,
            self.min_degree,
            self.avg_degree,
            self.max_degree,
            self.paths.diameter,
            self.paths.aspl,
        )
    }

    /// Table header matching [`Self::row`].
    pub fn header() -> String {
        format!(
            "{:<24} {:>6} {:>7} {:>4} {:>6} {:>4} {:>5} {:>7}",
            "topology", "nodes", "edges", "dmin", "davg", "dmax", "diam", "aspl"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsn_core::ring::Ring;

    #[test]
    fn report_fields() {
        let g = Ring::new(16).unwrap().into_graph();
        let r = TopologyReport::new("ring-16", &g);
        assert_eq!(r.nodes, 16);
        assert_eq!(r.edges, 16);
        assert_eq!(r.min_degree, 2);
        assert_eq!(r.max_degree, 2);
        assert_eq!(r.paths.diameter, 8);
    }

    #[test]
    fn moore_bound_known_values() {
        // Petersen graph parameters: degree 3, diameter 2 -> bound 10
        // (and the Petersen graph achieves it).
        assert_eq!(moore_bound(3, 2), 10);
        // degree 2 (=cycle): 2k+1
        assert_eq!(moore_bound(2, 3), 7);
        // k = 0: just the node
        assert_eq!(moore_bound(5, 0), 1);
        // degree 7, diameter 2 -> Hoffman-Singleton: 50
        assert_eq!(moore_bound(7, 2), 50);
    }

    #[test]
    fn moore_efficiency_in_unit_interval() {
        let g = Ring::new(16).unwrap().into_graph();
        let eff = moore_efficiency(&g, 8);
        assert!(eff > 0.0 && eff <= 1.0);
        // A 16-ring with diameter 8: bound 17, so 16/17.
        assert!((eff - 16.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn rows_align_with_header() {
        let g = Ring::new(8).unwrap().into_graph();
        let r = TopologyReport::new("ring-8", &g);
        // Both render without panicking and carry the name/nodes.
        assert!(r.row().contains("ring-8"));
        assert!(TopologyReport::header().contains("diam"));
    }
}
