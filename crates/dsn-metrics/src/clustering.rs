//! Clustering coefficient and Watts–Strogatz small-world index.
//!
//! The paper motivates DSN by the small-world effect (Watts & Strogatz,
//! Kleinberg); these metrics let the examples quantify *how* small-world a
//! topology is: high clustering with low path length relative to an
//! equivalent random graph.

use dsn_core::graph::Graph;
use rayon::prelude::*;
use std::collections::HashSet;

/// Local clustering coefficient of node `v`: the fraction of realized links
/// among its neighbors. Parallel edges are collapsed; nodes with fewer than
/// two distinct neighbors have coefficient 0.
pub fn local_clustering(g: &Graph, v: usize) -> f64 {
    let nbrs: HashSet<usize> = g.neighbor_ids(v).filter(|&u| u != v).collect();
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let nbr_vec: Vec<usize> = nbrs.iter().copied().collect();
    let mut links = 0usize;
    for (i, &a) in nbr_vec.iter().enumerate() {
        for &b in &nbr_vec[i + 1..] {
            if g.has_edge(a, b) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k * (k - 1)) as f64
}

/// Average local clustering coefficient (Watts–Strogatz definition).
pub fn avg_clustering(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    let sum: f64 = (0..n).into_par_iter().map(|v| local_clustering(g, v)).sum();
    sum / n as f64
}

/// Expected clustering coefficient of an Erdős–Rényi random graph with the
/// same node count and average degree: `C_rand ≈ <k> / n`.
pub fn random_clustering_baseline(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        0.0
    } else {
        g.avg_degree() / n as f64
    }
}

/// Expected average path length of an equivalent random graph:
/// `L_rand ≈ ln(n) / ln(<k>)` (valid for `<k> > 1`).
pub fn random_aspl_baseline(g: &Graph) -> f64 {
    let n = g.node_count() as f64;
    let k = g.avg_degree();
    if n <= 1.0 || k <= 1.0 {
        return f64::NAN;
    }
    n.ln() / k.ln()
}

/// Watts–Strogatz small-world index
/// `sigma = (C / C_rand) / (L / L_rand)`; `sigma > 1` indicates small-world
/// structure. `aspl` must come from [`crate::apsp::path_stats`].
pub fn small_world_sigma(g: &Graph, aspl: f64) -> f64 {
    let c = avg_clustering(g);
    let c_rand = random_clustering_baseline(g);
    let l_rand = random_aspl_baseline(g);
    if c_rand <= 0.0 || aspl <= 0.0 || !l_rand.is_finite() {
        return f64::NAN;
    }
    (c / c_rand) / (aspl / l_rand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsn_core::graph::LinkKind;

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for a in 0..n {
            for b in a + 1..n {
                g.add_edge(a, b, LinkKind::Random);
            }
        }
        g
    }

    #[test]
    fn complete_graph_clusters_fully() {
        let g = complete(5);
        for v in 0..5 {
            assert!((local_clustering(&g, v) - 1.0).abs() < 1e-12);
        }
        assert!((avg_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_zero_clustering() {
        let mut g = Graph::new(5);
        for v in 1..5 {
            g.add_edge(0, v, LinkKind::Random);
        }
        assert_eq!(avg_clustering(&g), 0.0);
    }

    #[test]
    fn triangle_plus_pendant() {
        let mut g = complete(3);
        // add node 3 hanging off node 0
        let mut g2 = Graph::new(4);
        for e in g.edges() {
            g2.add_edge(e.a, e.b, e.kind);
        }
        g2.add_edge(0, 3, LinkKind::Random);
        g = g2;
        // node 0 neighbors {1,2,3}: links 1-2 only -> C = 1/3
        assert!((local_clustering(&g, 0) - 1.0 / 3.0).abs() < 1e-12);
        // nodes 1,2 still fully clustered, node 3 has one neighbor -> 0
        assert!((avg_clustering(&g) - (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_do_not_inflate() {
        let mut g = complete(3);
        g.add_edge(0, 1, LinkKind::Up); // parallel
        assert!((local_clustering(&g, 2) - 1.0).abs() < 1e-12);
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn baselines_sane() {
        let g = complete(10);
        assert!(random_clustering_baseline(&g) > 0.0);
        assert!(random_aspl_baseline(&g) > 0.0);
        let sigma = small_world_sigma(&g, 1.0);
        assert!(sigma.is_finite());
    }
}
