//! Single-source breadth-first search over the unweighted physical graph.
//!
//! Interconnect hop metrics (diameter, average shortest path length) are all
//! BFS-based because every link costs one switch hop. The hot loop avoids
//! allocation by reusing a caller-provided workspace, which matters when the
//! APSP sweep runs one BFS per source across a rayon pool.

use dsn_core::graph::Graph;
use dsn_core::NodeId;
use std::collections::VecDeque;

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Reusable BFS scratch space (distance array + queue).
#[derive(Debug, Default)]
pub struct BfsWorkspace {
    dist: Vec<u32>,
    queue: VecDeque<NodeId>,
}

impl BfsWorkspace {
    /// Create a workspace sized for `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsWorkspace {
            dist: vec![UNREACHABLE; n],
            queue: VecDeque::with_capacity(n),
        }
    }

    /// Run BFS from `source`, filling the internal distance array, and
    /// return it as a slice. Unreached nodes hold [`UNREACHABLE`].
    pub fn run(&mut self, g: &Graph, source: NodeId) -> &[u32] {
        let n = g.node_count();
        self.dist.clear();
        self.dist.resize(n, UNREACHABLE);
        self.queue.clear();
        self.dist[source] = 0;
        self.queue.push_back(source);
        while let Some(v) = self.queue.pop_front() {
            let dv = self.dist[v];
            for u in g.neighbor_ids(v) {
                if self.dist[u] == UNREACHABLE {
                    self.dist[u] = dv + 1;
                    self.queue.push_back(u);
                }
            }
        }
        &self.dist
    }
}

/// One-shot BFS: distances from `source` to every node.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut ws = BfsWorkspace::new(g.node_count());
    ws.run(g, source);
    ws.dist
}

/// Shortest path (as a node sequence, source first) from `source` to
/// `target`, or `None` if unreachable. Parent tracking picks the
/// lowest-numbered parent, so the result is deterministic.
pub fn bfs_path(g: &Graph, source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
    if source == target {
        return Some(vec![source]);
    }
    let n = g.node_count();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        if v == target {
            break;
        }
        for u in g.neighbor_ids(v) {
            if dist[u] == UNREACHABLE {
                dist[u] = dist[v] + 1;
                parent[u] = Some(v);
                queue.push_back(u);
            }
        }
    }
    if dist[target] == UNREACHABLE {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while let Some(p) = parent[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    debug_assert_eq!(path[0], source);
    Some(path)
}

/// Graph (hop) distance between two nodes, or `None` if unreachable.
pub fn distance(g: &Graph, a: NodeId, b: NodeId) -> Option<u32> {
    let d = bfs_distances(g, a)[b];
    (d != UNREACHABLE).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsn_core::graph::LinkKind;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, LinkKind::Ring);
        }
        g
    }

    #[test]
    fn distances_on_a_path() {
        let g = path_graph(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_marked() {
        let mut g = path_graph(3);
        g = {
            let mut g2 = Graph::new(4);
            for e in g.edges() {
                g2.add_edge(e.a, e.b, e.kind);
            }
            g2
        };
        let d = bfs_distances(&g, 0);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn workspace_reuse_resets_state() {
        let g = path_graph(4);
        let mut ws = BfsWorkspace::new(4);
        let d0: Vec<u32> = ws.run(&g, 0).to_vec();
        let d3: Vec<u32> = ws.run(&g, 3).to_vec();
        assert_eq!(d0, vec![0, 1, 2, 3]);
        assert_eq!(d3, vec![3, 2, 1, 0]);
    }

    #[test]
    fn path_reconstruction() {
        let g = path_graph(5);
        assert_eq!(bfs_path(&g, 0, 4), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(bfs_path(&g, 2, 2), Some(vec![2]));
    }

    #[test]
    fn path_is_shortest_on_a_cycle() {
        let mut g = path_graph(6);
        g.add_edge(0, 5, LinkKind::Ring);
        let p = bfs_path(&g, 0, 4).unwrap();
        assert_eq!(p.len() - 1, 2); // 0 -> 5 -> 4
        assert_eq!(distance(&g, 0, 4), Some(2));
    }
}
