//! Bisection-width estimation: the number of links crossing a balanced
//! bipartition, the classic throughput proxy for interconnects.
//!
//! Exact minimum bisection is NP-hard; we compute an *upper bound* with a
//! seeded Kernighan–Lin-style refinement from several starting partitions,
//! which is tight on the structured topologies used here (torus bisection
//! is known in closed form and the tests check against it).

use dsn_core::graph::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a bisection estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bisection {
    /// Links crossing the best partition found (an upper bound on the true
    /// minimum bisection width).
    pub width: usize,
    /// Side assignment: `side[v]` is `false`/`true` for the two halves.
    pub side: Vec<bool>,
}

/// Estimate the minimum bisection width: best of `restarts` KL-refined
/// partitions (the first start is the id-order split, which is optimal for
/// ring-ordered topologies; the rest are random balanced splits).
pub fn estimate_bisection(g: &Graph, restarts: usize, seed: u64) -> Bisection {
    let n = g.node_count();
    assert!(n >= 2, "bisection needs at least two nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best: Option<Bisection> = None;

    for r in 0..restarts.max(1) {
        let mut side = vec![false; n];
        if r == 0 {
            // id-order split
            for (v, s) in side.iter_mut().enumerate() {
                *s = v >= n / 2;
            }
        } else {
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            for &v in &perm[n / 2..] {
                side[v] = true;
            }
        }
        refine(g, &mut side);
        let width = cut_size(g, &side);
        if best.as_ref().is_none_or(|b| width < b.width) {
            best = Some(Bisection { width, side });
        }
    }
    best.expect("at least one restart")
}

/// Count edges crossing the partition.
pub fn cut_size(g: &Graph, side: &[bool]) -> usize {
    g.edges().iter().filter(|e| side[e.a] != side[e.b]).count()
}

/// One KL-style refinement pass repeated to a local optimum: each round
/// computes every node's move gain once (O(n + m)), then evaluates swaps
/// only among the top-K gain candidates of each side — the classic KL
/// shortcut that keeps rounds near-linear instead of scanning all O(n^2)
/// opposite-side pairs.
fn refine(g: &Graph, side: &mut [bool]) {
    const TOP_K: usize = 12;
    let n = g.node_count();
    // gain(v) = external(v) - internal(v): cut reduction of moving v alone.
    let gain = |side: &[bool], v: usize| -> i64 {
        let mut ext = 0i64;
        let mut int = 0i64;
        for u in g.neighbor_ids(v) {
            if side[u] != side[v] {
                ext += 1;
            } else {
                int += 1;
            }
        }
        ext - int
    };
    // Bounded number of improvement rounds; each strictly reduces the cut.
    for _ in 0..4 * n {
        let gains: Vec<i64> = (0..n).map(|v| gain(side, v)).collect();
        let top = |want: bool| -> Vec<usize> {
            let mut c: Vec<usize> = (0..n).filter(|&v| side[v] == want).collect();
            c.sort_by_key(|&v| std::cmp::Reverse(gains[v]));
            c.truncate(TOP_K);
            c
        };
        let left = top(false);
        let right = top(true);
        let mut best_pair: Option<(usize, usize, i64)> = None;
        for &a in &left {
            for &b in &right {
                // Combined gain; subtract 2 per a-b edge (they stay cut).
                let ab_edges = g.neighbors(a).filter(|&(u, _)| u == b).count() as i64;
                let total = gains[a] + gains[b] - 2 * ab_edges;
                if total > best_pair.map_or(0, |(_, _, t)| t) {
                    best_pair = Some((a, b, total));
                }
            }
        }
        match best_pair {
            Some((a, b, _)) => {
                side[a] = true;
                side[b] = false;
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsn_core::dsn::Dsn;
    use dsn_core::ring::Ring;
    use dsn_core::torus::Torus;

    #[test]
    fn ring_bisection_is_two() {
        let g = Ring::new(16).unwrap().into_graph();
        let b = estimate_bisection(&g, 3, 1);
        assert_eq!(b.width, 2);
        assert_eq!(cut_size(&g, &b.side), b.width);
        // balanced halves
        let ones = b.side.iter().filter(|&&s| s).count();
        assert_eq!(ones, 8);
    }

    #[test]
    fn torus_bisection_known_value() {
        // k x k torus bisection = 2k (two rows of wraparound+internal cuts).
        let g = Torus::new(&[4, 4]).unwrap().into_graph();
        let b = estimate_bisection(&g, 4, 2);
        assert_eq!(b.width, 8, "4x4 torus bisection");
    }

    #[test]
    fn cut_size_matches_side() {
        let g = Ring::new(8).unwrap().into_graph();
        let side = vec![false, false, false, false, true, true, true, true];
        assert_eq!(cut_size(&g, &side), 2);
    }

    #[test]
    fn dsn_bisection_exceeds_ring() {
        // Shortcuts must raise the bisection well above the ring's 2.
        let dsn = Dsn::new(64, 5).unwrap();
        let b = estimate_bisection(dsn.graph(), 3, 3);
        assert!(b.width >= 6, "width {}", b.width);
        // and is at most the id-split cut
        let mut id_split = vec![false; 64];
        for (v, s) in id_split.iter_mut().enumerate() {
            *s = v >= 32;
        }
        assert!(b.width <= cut_size(dsn.graph(), &id_split));
    }

    #[test]
    fn halves_stay_balanced_after_refinement() {
        let dsn = Dsn::new(100, 6).unwrap();
        let b = estimate_bisection(dsn.graph(), 2, 4);
        let ones = b.side.iter().filter(|&&s| s).count();
        assert_eq!(ones, 50);
    }
}
