//! Path diversity and fault tolerance: edge-disjoint path counts via
//! unit-capacity max-flow, and global edge connectivity.
//!
//! The paper motivates random/small-world topologies partly by fault
//! tolerance (Section III cites Jellyfish and Small-World Datacenters);
//! these metrics let the examples compare DSN's redundancy against the
//! baselines: a degree-4 topology can have at most 4 edge-disjoint paths
//! between any pair, and a good one achieves that bound for most pairs.

use dsn_core::graph::Graph;
use dsn_core::NodeId;
use std::collections::VecDeque;

/// Maximum number of edge-disjoint paths between `s` and `t`
/// (= the minimum edge cut separating them, by Menger's theorem).
///
/// Unit-capacity max-flow via BFS augmentation on a residual structure.
/// Each undirected edge can carry one unit in either direction (but not
/// both, which would cancel).
pub fn edge_disjoint_paths(g: &Graph, s: NodeId, t: NodeId) -> usize {
    assert!(s < g.node_count() && t < g.node_count());
    if s == t {
        return 0;
    }
    // Residual flow per edge: -1, 0, +1 in the a->b orientation.
    let mut flow: Vec<i8> = vec![0; g.edge_count()];
    let mut parent_edge: Vec<Option<usize>> = vec![None; g.node_count()];
    let mut total = 0usize;

    loop {
        // BFS over residual edges.
        parent_edge.iter_mut().for_each(|p| *p = None);
        let mut q = VecDeque::new();
        let mut seen = vec![false; g.node_count()];
        seen[s] = true;
        q.push_back(s);
        'bfs: while let Some(v) = q.pop_front() {
            for (u, e) in g.neighbors(v) {
                if seen[u] {
                    continue;
                }
                // Residual capacity of traversing e from v to u.
                let edge = g.edge(e);
                let forward = edge.a == v;
                let f = flow[e] as i32;
                let residual = if forward { 1 - f } else { 1 + f };
                if residual <= 0 {
                    continue;
                }
                seen[u] = true;
                parent_edge[u] = Some(e);
                if u == t {
                    break 'bfs;
                }
                q.push_back(u);
            }
        }
        if parent_edge[t].is_none() {
            break;
        }
        // Augment along the found path.
        let mut v = t;
        while v != s {
            let e = parent_edge[v].expect("path edge");
            let edge = g.edge(e);
            let prev = edge.other(v);
            if edge.a == prev {
                flow[e] += 1;
            } else {
                flow[e] -= 1;
            }
            v = prev;
        }
        total += 1;
        if total > g.max_degree() {
            // Cannot exceed min(deg(s), deg(t)); guard against bugs.
            break;
        }
    }
    total
}

/// Global edge connectivity: the minimum, over all `v != 0`, of the max
/// flow from node 0 to `v` (a classic exact reduction for undirected
/// graphs). Equals the smallest number of link failures that can
/// disconnect the network.
pub fn edge_connectivity(g: &Graph) -> usize {
    let n = g.node_count();
    if n < 2 {
        return 0;
    }
    (1..n)
        .map(|v| edge_disjoint_paths(g, 0, v))
        .min()
        .unwrap_or(0)
}

/// Distribution of pairwise path diversity over a deterministic sample of
/// `pairs` node pairs: returns `hist[k]` = number of sampled pairs with
/// exactly `k` edge-disjoint paths.
pub fn path_diversity_histogram(g: &Graph, pairs: usize) -> Vec<usize> {
    let n = g.node_count();
    let mut hist = vec![0usize; g.max_degree() + 1];
    if n < 2 {
        return hist;
    }
    for i in 0..pairs {
        let s = (i * 7919) % n;
        let mut t = (i * 104729 + n / 2) % n;
        if s == t {
            t = (t + 1) % n;
        }
        let k = edge_disjoint_paths(g, s, t);
        let top = hist.len() - 1;
        hist[k.min(top)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsn_core::dsn::Dsn;
    use dsn_core::graph::LinkKind;
    use dsn_core::ring::Ring;
    use dsn_core::torus::Torus;

    #[test]
    fn ring_has_two_disjoint_paths() {
        let g = Ring::new(10).unwrap().into_graph();
        for t in 1..10 {
            assert_eq!(edge_disjoint_paths(&g, 0, t), 2, "t={t}");
        }
        assert_eq!(edge_connectivity(&g), 2);
    }

    #[test]
    fn torus_is_4_connected() {
        let g = Torus::new(&[4, 4]).unwrap().into_graph();
        assert_eq!(edge_connectivity(&g), 4);
        assert_eq!(edge_disjoint_paths(&g, 0, 15), 4);
    }

    #[test]
    fn bridge_limits_connectivity() {
        // Two triangles joined by one bridge: connectivity 1.
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(a, b, LinkKind::Random);
        }
        g.add_edge(2, 3, LinkKind::Random);
        assert_eq!(edge_disjoint_paths(&g, 0, 5), 1);
        assert_eq!(edge_connectivity(&g), 1);
    }

    #[test]
    fn disconnected_pair_has_zero() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, LinkKind::Random);
        g.add_edge(2, 3, LinkKind::Random);
        assert_eq!(edge_disjoint_paths(&g, 0, 3), 0);
        assert_eq!(edge_connectivity(&g), 0);
    }

    #[test]
    fn self_pair_is_zero() {
        let g = Ring::new(5).unwrap().into_graph();
        assert_eq!(edge_disjoint_paths(&g, 2, 2), 0);
    }

    #[test]
    fn dsn_connectivity_at_least_min_degree_heuristic() {
        // DSN's min degree is 3 for x = p-1 (Fact 1); its edge
        // connectivity is at least 2 (ring) and typically equals the min
        // degree.
        let dsn = Dsn::new(126, 6).unwrap();
        let k = edge_connectivity(dsn.graph());
        assert!(k >= 2, "connectivity {k}");
        assert!(k <= dsn.graph().min_degree());
    }

    #[test]
    fn diversity_histogram_sums_to_pairs() {
        let g = Torus::new(&[4, 4]).unwrap().into_graph();
        let hist = path_diversity_histogram(&g, 40);
        assert_eq!(hist.iter().sum::<usize>(), 40);
        // all torus pairs have 4 disjoint paths
        assert_eq!(hist[4], 40);
    }

    #[test]
    fn paths_bounded_by_endpoint_degree() {
        let dsn = Dsn::new(64, 5).unwrap();
        let g = dsn.graph();
        for t in (1..64).step_by(5) {
            let k = edge_disjoint_paths(g, 0, t);
            assert!(k <= g.degree(0).min(g.degree(t)));
            assert!(k >= 1);
        }
    }
}
