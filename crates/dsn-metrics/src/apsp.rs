//! All-pairs shortest path analysis: diameter, average shortest path length
//! (ASPL), eccentricities and hop-distance histograms — the quantities
//! plotted in the paper's Figures 7 and 8.
//!
//! One BFS per source, fanned out over a rayon pool; the per-source partial
//! results (max distance, distance sum, histogram) are reduced
//! associatively, so the parallel sweep is deterministic.

use crate::bfs::{BfsWorkspace, UNREACHABLE};
use dsn_core::graph::Graph;
use dsn_core::parallel::Parallelism;
use rayon::prelude::*;

/// Hop-count statistics of a graph, from an exact APSP sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStats {
    /// Number of nodes the sweep covered.
    pub nodes: usize,
    /// Maximum finite shortest-path length over all ordered pairs.
    pub diameter: u32,
    /// Average shortest path length over ordered pairs of distinct,
    /// mutually reachable nodes.
    pub aspl: f64,
    /// `histogram[d]` = number of ordered pairs at distance `d`
    /// (`histogram[0]` counts the trivial self pairs).
    pub histogram: Vec<u64>,
    /// Eccentricity of each node (max finite distance from it).
    pub eccentricity: Vec<u32>,
    /// Number of ordered pairs of distinct nodes that are unreachable.
    pub unreachable_pairs: u64,
}

impl PathStats {
    /// Radius: the minimum eccentricity.
    pub fn radius(&self) -> u32 {
        self.eccentricity.iter().copied().min().unwrap_or(0)
    }

    /// True when every node reaches every other node.
    pub fn is_connected(&self) -> bool {
        self.unreachable_pairs == 0
    }

    /// Fraction of ordered reachable pairs whose distance is at most `d`.
    pub fn cdf_at(&self, d: u32) -> f64 {
        let total: u64 = self.histogram.iter().skip(1).sum();
        if total == 0 {
            return 1.0;
        }
        let within: u64 = self.histogram.iter().skip(1).take(d as usize).sum();
        within as f64 / total as f64
    }
}

/// Per-source partial accumulation, merged pairwise.
#[derive(Debug, Clone)]
struct Partial {
    max: u32,
    sum: u64,
    count: u64,
    unreachable: u64,
    hist: Vec<u64>,
}

impl Partial {
    fn empty() -> Self {
        Partial {
            max: 0,
            sum: 0,
            count: 0,
            unreachable: 0,
            hist: Vec::new(),
        }
    }

    fn merge(mut self, other: Partial) -> Self {
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
        self.unreachable += other.unreachable;
        if self.hist.len() < other.hist.len() {
            self.hist.resize(other.hist.len(), 0);
        }
        for (i, v) in other.hist.into_iter().enumerate() {
            self.hist[i] += v;
        }
        self
    }
}

/// One BFS from `s` folded into a per-source partial — the unit of work
/// the serial and parallel sweeps share.
fn source_partial(g: &Graph, ws: &mut BfsWorkspace, s: usize) -> (u32, Partial) {
    let dist = ws.run(g, s);
    let mut part = Partial::empty();
    let mut ecc = 0u32;
    for (v, &d) in dist.iter().enumerate() {
        if v == s {
            continue;
        }
        if d == UNREACHABLE {
            part.unreachable += 1;
        } else {
            ecc = ecc.max(d);
            part.sum += d as u64;
            part.count += 1;
            let idx = d as usize;
            if part.hist.len() <= idx {
                part.hist.resize(idx + 1, 0);
            }
            part.hist[idx] += 1;
        }
    }
    part.max = ecc;
    (ecc, part)
}

/// Sweep the given sources (serial or fanned out per the policy) and
/// assemble the final stats. The per-source partials are integers merged
/// in source order, so the result is bit-identical across policies.
fn sweep_sources(g: &Graph, sources: &[usize], par: &Parallelism) -> PathStats {
    let n = g.node_count();
    let per_source: Vec<(u32, Partial)> = if par.is_serial() {
        let mut ws = BfsWorkspace::new(n);
        sources
            .iter()
            .map(|&s| source_partial(g, &mut ws, s))
            .collect()
    } else {
        sources
            .par_iter()
            .map_init(|| BfsWorkspace::new(n), |ws, &s| source_partial(g, ws, s))
            .collect()
    };

    let eccentricity: Vec<u32> = per_source.iter().map(|(e, _)| *e).collect();
    let total = per_source
        .into_iter()
        .map(|(_, p)| p)
        .reduce(Partial::merge)
        .unwrap_or_else(Partial::empty);

    let mut histogram = total.hist;
    if histogram.is_empty() {
        histogram.push(0);
    }
    // Slot 0 counts self pairs for a complete ordered-pair accounting.
    histogram[0] = sources.len() as u64;

    PathStats {
        nodes: n,
        diameter: total.max,
        aspl: if total.count == 0 {
            0.0
        } else {
            total.sum as f64 / total.count as f64
        },
        histogram,
        eccentricity,
        unreachable_pairs: total.unreachable,
    }
}

/// Exact APSP statistics via a parallel BFS sweep (one BFS per source).
pub fn path_stats(g: &Graph) -> PathStats {
    path_stats_with(g, &Parallelism::auto())
}

/// [`path_stats`] under an explicit [`Parallelism`] policy. Serial and
/// parallel sweeps produce bit-identical results.
pub fn path_stats_with(g: &Graph, par: &Parallelism) -> PathStats {
    let n = g.node_count();
    if n == 0 {
        return PathStats {
            nodes: 0,
            diameter: 0,
            aspl: 0.0,
            histogram: vec![0],
            eccentricity: Vec::new(),
            unreachable_pairs: 0,
        };
    }
    let sources: Vec<usize> = (0..n).collect();
    sweep_sources(g, &sources, par)
}

/// Diameter only (still a full sweep; kept for call-site clarity).
pub fn diameter(g: &Graph) -> u32 {
    path_stats(g).diameter
}

/// [`diameter`] under an explicit [`Parallelism`] policy.
pub fn diameter_with(g: &Graph, par: &Parallelism) -> u32 {
    path_stats_with(g, par).diameter
}

/// Average shortest path length only.
pub fn aspl(g: &Graph) -> f64 {
    path_stats(g).aspl
}

/// [`aspl`] under an explicit [`Parallelism`] policy.
pub fn aspl_with(g: &Graph, par: &Parallelism) -> f64 {
    path_stats_with(g, par).aspl
}

/// Approximate ASPL/diameter from `samples` BFS sources chosen
/// deterministically (evenly spaced). Exact when `samples >= n`. Useful for
/// quick sweeps over very large graphs; the figure harnesses use the exact
/// sweep since the paper tops out at 2048 switches.
pub fn sampled_path_stats(g: &Graph, samples: usize) -> PathStats {
    sampled_path_stats_with(g, samples, &Parallelism::auto())
}

/// [`sampled_path_stats`] under an explicit [`Parallelism`] policy.
pub fn sampled_path_stats_with(g: &Graph, samples: usize, par: &Parallelism) -> PathStats {
    let n = g.node_count();
    if samples >= n {
        return path_stats_with(g, par);
    }
    let stride = (n as f64 / samples as f64).max(1.0);
    let sources: Vec<usize> = (0..samples)
        .map(|i| ((i as f64 * stride) as usize).min(n - 1))
        .collect();
    sweep_sources(g, &sources, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsn_core::graph::LinkKind;
    use dsn_core::ring::Ring;
    use dsn_core::torus::Torus;

    #[test]
    fn ring_diameter_and_aspl() {
        // Ring of n: diameter floor(n/2); ASPL for even n is n^2/4 / (n-1).
        let g = Ring::new(8).unwrap().into_graph();
        let s = path_stats(&g);
        assert_eq!(s.diameter, 4);
        // distances from any node: 1,1,2,2,3,3,4 -> sum 16, avg 16/7
        assert!((s.aspl - 16.0 / 7.0).abs() < 1e-12);
        assert!(s.is_connected());
        assert_eq!(s.radius(), 4);
    }

    #[test]
    fn torus_4x4_diameter() {
        let g = Torus::new(&[4, 4]).unwrap().into_graph();
        let s = path_stats(&g);
        assert_eq!(s.diameter, 4); // 2 + 2
        assert_eq!(s.eccentricity.len(), 16);
        assert!(s.eccentricity.iter().all(|&e| e == 4));
    }

    #[test]
    fn histogram_sums_to_ordered_pairs() {
        let g = Torus::new(&[4, 8]).unwrap().into_graph();
        let s = path_stats(&g);
        let n = g.node_count() as u64;
        let total: u64 = s.histogram.iter().sum();
        assert_eq!(total, n * n - s.unreachable_pairs);
        assert_eq!(s.histogram[0], n);
        assert_eq!(s.unreachable_pairs, 0);
    }

    #[test]
    fn disconnected_graph_counts_unreachable() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, LinkKind::Ring);
        g.add_edge(2, 3, LinkKind::Ring);
        let s = path_stats(&g);
        assert_eq!(s.unreachable_pairs, 8); // 2 components of 2: 2*2*2
        assert!(!s.is_connected());
        assert_eq!(s.diameter, 1);
    }

    #[test]
    fn cdf_monotone() {
        let g = Torus::new(&[4, 4]).unwrap().into_graph();
        let s = path_stats(&g);
        let mut prev = 0.0;
        for d in 0..=s.diameter {
            let c = s.cdf_at(d);
            assert!(c >= prev);
            prev = c;
        }
        assert!((s.cdf_at(s.diameter) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_matches_exact_when_full() {
        let g = Torus::new(&[4, 4]).unwrap().into_graph();
        let exact = path_stats(&g);
        let sampled = sampled_path_stats(&g, 1000);
        assert_eq!(exact, sampled);
    }

    #[test]
    fn sampled_subset_is_close() {
        let g = Ring::new(64).unwrap().into_graph();
        let exact = path_stats(&g);
        let sampled = sampled_path_stats(&g, 16);
        assert_eq!(sampled.diameter, exact.diameter); // symmetric graph
        assert!((sampled.aspl - exact.aspl).abs() < 0.5);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        let s = path_stats(&g);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.aspl, 0.0);
    }
}
