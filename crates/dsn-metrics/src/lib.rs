//! # dsn-metrics — parallel graph analysis for interconnect topologies
//!
//! Exact, rayon-parallel all-pairs shortest-path analysis (diameter, average
//! shortest path length, eccentricities, hop histograms) plus clustering /
//! small-world metrics. These regenerate the paper's Figures 7 and 8 and
//! back the Theorem 1–2 validation experiments.
//!
//! ```
//! use dsn_core::dsn::Dsn;
//! use dsn_metrics::apsp::path_stats;
//!
//! let dsn = Dsn::new(256, 7).unwrap();
//! let stats = path_stats(dsn.graph());
//! // Theorem 1b: diameter <= 2.5 p + r for x > p - log2 p
//! let bound = 2.5 * dsn.p() as f64 + dsn.r() as f64;
//! assert!(stats.diameter as f64 <= bound);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apsp;
pub mod bfs;
pub mod bisection;
pub mod clustering;
pub mod connectivity;
pub mod report;

pub use apsp::{
    aspl, aspl_with, diameter, diameter_with, path_stats, path_stats_with, sampled_path_stats,
    sampled_path_stats_with, PathStats,
};
pub use bfs::{bfs_distances, bfs_path, distance, BfsWorkspace, UNREACHABLE};
pub use bisection::{cut_size, estimate_bisection, Bisection};
pub use connectivity::{edge_connectivity, edge_disjoint_paths, path_diversity_histogram};
pub use report::{moore_bound, moore_efficiency, TopologyReport};
