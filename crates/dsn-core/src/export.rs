//! Graph export for external tooling: Graphviz DOT and a plain edge list
//! (one `a b kind` line per link), plus a deterministic fingerprint used by
//! tests and experiment logs to pin exact instances.

use crate::graph::{Graph, LinkKind};
use std::fmt::Write as _;

/// Render the graph as Graphviz DOT (undirected). Link kinds become edge
/// colors so DSN structure is visible at a glance.
pub fn to_dot(g: &Graph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{name}\" {{");
    let _ = writeln!(out, "  node [shape=circle, fontsize=8];");
    for e in g.edges() {
        let color = match e.kind {
            LinkKind::Ring | LinkKind::Grid | LinkKind::Cycle => "black",
            LinkKind::Shortcut { .. } => "blue",
            LinkKind::Random | LinkKind::LongRange => "red",
            LinkKind::Up => "green",
            LinkKind::Extra => "orange",
            LinkKind::Skip => "purple",
            LinkKind::Torus { .. } | LinkKind::Hypercube { .. } | LinkKind::Shuffle => "gray",
        };
        let _ = writeln!(out, "  {} -- {} [color={color}];", e.a, e.b);
    }
    out.push_str("}\n");
    out
}

/// Render as a plain edge list: header line `# nodes=<n>`, then one
/// `a b <kind>` line per edge.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = format!("# nodes={}\n", g.node_count());
    for e in g.edges() {
        let _ = writeln!(out, "{} {} {}", e.a, e.b, e.kind);
    }
    out
}

/// Parse an edge list produced by [`to_edge_list`]. Every [`LinkKind`]
/// round-trips losslessly; an unrecognized kind string rejects the input.
pub fn from_edge_list(text: &str) -> Option<Graph> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let n: usize = header.strip_prefix("# nodes=")?.trim().parse().ok()?;
    let mut g = Graph::new(n);
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let a: usize = parts.next()?.parse().ok()?;
        let b: usize = parts.next()?.parse().ok()?;
        let kind = parse_kind(parts.next().unwrap_or("random"))?;
        if a >= n || b >= n || a == b {
            return None;
        }
        g.add_edge(a, b, kind);
    }
    Some(g)
}

/// Parse the display form of a [`LinkKind`] (the inverse of its `Display`).
fn parse_kind(s: &str) -> Option<LinkKind> {
    Some(match s {
        "ring" => LinkKind::Ring,
        "grid" => LinkKind::Grid,
        "up" => LinkKind::Up,
        "extra" => LinkKind::Extra,
        "skip" => LinkKind::Skip,
        "cycle" => LinkKind::Cycle,
        "shuffle" => LinkKind::Shuffle,
        "long-range" => LinkKind::LongRange,
        "random" => LinkKind::Random,
        k if k.starts_with("shortcut(l=") => LinkKind::Shortcut {
            level: k
                .strip_prefix("shortcut(l=")?
                .strip_suffix(')')?
                .parse()
                .ok()?,
        },
        k if k.starts_with("hypercube(bit=") => LinkKind::Hypercube {
            bit: k
                .strip_prefix("hypercube(bit=")?
                .strip_suffix(')')?
                .parse()
                .ok()?,
        },
        k if k.starts_with("torus(d=") => {
            let inner = k.strip_prefix("torus(d=")?.strip_suffix(')')?;
            let (dim, wrap) = inner.split_once(",wrap=")?;
            LinkKind::Torus {
                dim: dim.parse().ok()?,
                wrap: wrap.parse().ok()?,
            }
        }
        _ => return None,
    })
}

/// A deterministic 64-bit fingerprint of the graph structure (FNV-1a over
/// the edge list). Equal graphs -> equal fingerprints; used to pin the
/// seeded RANDOM baselines in experiment logs.
pub fn fingerprint(g: &Graph) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(PRIME);
    };
    eat(g.node_count() as u64);
    for e in g.edges() {
        eat(e.a as u64);
        eat(e.b as u64);
        // kind folded coarsely: discriminant-ish tag
        eat(match e.kind {
            LinkKind::Ring => 1,
            LinkKind::Shortcut { level } => 100 + level as u64,
            LinkKind::Up => 2,
            LinkKind::Extra => 3,
            LinkKind::Skip => 4,
            LinkKind::Torus { dim, wrap } => 200 + 2 * dim as u64 + wrap as u64,
            LinkKind::Grid => 5,
            LinkKind::Random => 6,
            LinkKind::LongRange => 7,
            LinkKind::Hypercube { bit } => 300 + bit as u64,
            LinkKind::Cycle => 8,
            LinkKind::Shuffle => 9,
        });
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsn::Dsn;
    use crate::ring::Ring;

    #[test]
    fn dot_contains_all_edges() {
        let g = Ring::new(5).unwrap().into_graph();
        let dot = to_dot(&g, "ring5");
        assert!(dot.starts_with("graph \"ring5\""));
        assert_eq!(dot.matches(" -- ").count(), 5);
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = Dsn::new(64, 5).unwrap().into_graph();
        let text = to_edge_list(&g);
        let g2 = from_edge_list(&text).expect("parse");
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        assert_eq!(g.edges(), g2.edges());
        assert_eq!(fingerprint(&g), fingerprint(&g2));
    }

    #[test]
    fn fingerprint_distinguishes() {
        let a = Dsn::new(64, 5).unwrap().into_graph();
        let b = Dsn::new(64, 4).unwrap().into_graph();
        let c = Ring::new(64).unwrap().into_graph();
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn malformed_edge_list_rejected() {
        assert!(from_edge_list("garbage").is_none());
        assert!(from_edge_list("# nodes=2\n0 5 ring\n").is_none());
        assert!(from_edge_list("# nodes=2\n1 1 ring\n").is_none());
        assert!(from_edge_list("# nodes=2\n0 1 flux-capacitor\n").is_none());
    }

    #[test]
    fn parameterized_kinds_roundtrip() {
        let g = crate::torus::Torus::new(&[4, 4]).unwrap().into_graph();
        let back = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(g.edges(), back.edges());
        let h = crate::classic::Hypercube::new(4).unwrap().into_graph();
        let back = from_edge_list(&to_edge_list(&h)).unwrap();
        assert_eq!(h.edges(), back.edges());
    }
}
