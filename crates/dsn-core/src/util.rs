//! Small numeric helpers shared by topology constructions.

/// `ceil(log2(n))` for `n >= 1`. By the paper's convention `p = ceil(log2 n)`
/// is the number of levels in a DSN and the size of a super node.
///
/// # Panics
/// Panics if `n == 0`.
#[inline]
pub fn ceil_log2(n: usize) -> u32 {
    assert!(n > 0, "ceil_log2(0) is undefined");
    usize::BITS - (n - 1).leading_zeros()
}

/// `floor(log2(n))` for `n >= 1`.
///
/// # Panics
/// Panics if `n == 0`.
#[inline]
pub fn floor_log2(n: usize) -> u32 {
    assert!(n > 0, "floor_log2(0) is undefined");
    usize::BITS - 1 - n.leading_zeros()
}

/// Integer ceiling division `ceil(a / b)`.
///
/// # Panics
/// Panics if `b == 0`.
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    assert!(b > 0, "division by zero");
    a.div_ceil(b)
}

/// Clockwise distance from `a` to `b` on a ring of `n` nodes
/// (the number of `succ` steps to walk from `a` to `b`).
#[inline]
pub fn cw_dist(a: usize, b: usize, n: usize) -> usize {
    debug_assert!(a < n && b < n);
    (b + n - a) % n
}

/// Ring (undirected) distance between `a` and `b` on a ring of `n` nodes.
#[inline]
pub fn ring_dist(a: usize, b: usize, n: usize) -> usize {
    let d = cw_dist(a, b, n);
    d.min(n - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn floor_log2_values() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(1023), 9);
        assert_eq!(floor_log2(1024), 10);
    }

    #[test]
    fn ceil_floor_agree_on_powers_of_two() {
        for k in 0..20 {
            let n = 1usize << k;
            assert_eq!(ceil_log2(n), floor_log2(n));
            assert_eq!(ceil_log2(n), k as u32);
        }
    }

    #[test]
    fn div_ceil_values() {
        assert_eq!(div_ceil(10, 3), 4);
        assert_eq!(div_ceil(9, 3), 3);
        assert_eq!(div_ceil(1, 1), 1);
        assert_eq!(div_ceil(0, 5), 0);
    }

    #[test]
    fn ring_distances() {
        assert_eq!(cw_dist(2, 5, 8), 3);
        assert_eq!(cw_dist(5, 2, 8), 5);
        assert_eq!(ring_dist(5, 2, 8), 3);
        assert_eq!(ring_dist(0, 4, 8), 4);
        assert_eq!(cw_dist(3, 3, 8), 0);
    }
}
