//! The basic Distributed Shortcut Network topology **DSN-x-n** (Section IV
//! of the paper).
//!
//! `n` switches sit on a ring. With `p = ceil(log2 n)`, every node `i` gets
//! the level `(i mod p) + 1`; each group of `p` consecutive nodes (a *super
//! node*) therefore holds one node of every level. A node of level `l <= x`
//! owns one undirected *shortcut* to the clockwise-nearest node of level
//! `l + 1` at clockwise distance at least `ceil(n / 2^l)`. Collapsing each
//! super node to a single vertex yields exactly a DLN-x, so the super graph
//! supports distance-halving routing while each physical node keeps a small
//! constant degree (Fact 1: degrees in `{2,3,4,5}`, at most `p` nodes of
//! degree 5).

use crate::error::{Result, TopologyError};
use crate::graph::{Graph, LinkKind, NodeId};
use crate::util::{ceil_log2, cw_dist, div_ceil};

/// The basic DSN-x-n topology, plus the node metadata (levels, shortcut
/// pointers) that the custom routing algorithm consumes.
#[derive(Debug, Clone)]
pub struct Dsn {
    n: usize,
    p: u32,
    x: u32,
    r: usize,
    /// `shortcut[i]` is the target of node `i`'s owned shortcut, when the
    /// node's level is `<= x`.
    shortcut: Vec<Option<NodeId>>,
    graph: Graph,
}

impl Dsn {
    /// Build DSN-x-n.
    ///
    /// Requirements: `n >= 8` (so that `p >= 3` and the ring plus shortcut
    /// structure is meaningful) and `1 <= x <= p - 1` where
    /// `p = ceil(log2 n)`.
    pub fn new(n: usize, x: u32) -> Result<Self> {
        if n < 8 {
            return Err(TopologyError::UnsupportedSize {
                n,
                requirement: "n >= 8 for a meaningful DSN".into(),
            });
        }
        let p = ceil_log2(n);
        if x < 1 || x > p - 1 {
            return Err(TopologyError::InvalidParameter {
                name: "x",
                constraint: format!("1 <= x <= p-1 (p = {p})"),
                value: x.to_string(),
            });
        }
        let r = n % p as usize;

        let mut graph = Graph::new(n);
        // Ring links: (i, i+1 mod n).
        for i in 0..n {
            let j = (i + 1) % n;
            if i < j {
                graph.add_edge(i, j, LinkKind::Ring);
            } else {
                // wrap link (n-1, 0)
                graph.add_edge(j, i, LinkKind::Ring);
            }
        }

        let mut shortcut = vec![None; n];
        // Index = node id; enumerate() over the vec would obscure that.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let l = level_of(i, p);
            if l <= x {
                let target = shortcut_target(i, l, n, p);
                shortcut[i] = target;
                if let Some(j) = target {
                    // Dedup: on tiny rings a shortcut may coincide with a
                    // ring link or another shortcut; the *logical* pointer in
                    // `shortcut` is kept either way so routing still works.
                    graph.add_edge_dedup(i, j, LinkKind::Shortcut { level: l });
                }
            }
        }

        Ok(Dsn {
            n,
            p,
            x,
            r,
            shortcut,
            graph,
        })
    }

    /// Build the recommended "clean" instance for a target size: the largest
    /// `n <= target` that is a multiple of its own `p = ceil(log2 n)`, with
    /// the maximum shortcut set `x = p - 1`, so `r = 0` always holds. Avoids
    /// the incomplete final super node discussed at the end of Section IV.C.
    pub fn new_clean(target: usize) -> Result<Self> {
        if target < 8 {
            return Err(TopologyError::UnsupportedSize {
                n: target,
                requirement: "target >= 8".into(),
            });
        }
        // Rounding target down to a multiple of p can cross a power-of-two
        // boundary and change p itself (e.g. target 9: p = 4 rounds to
        // n = 8, whose own p is 3 and 8 % 3 != 0), so "round once" does not
        // give a clean instance — and one-shot re-rounding can even skip a
        // valid size (target 17 rounds past the clean n = 16). Scan down to
        // the largest n whose own p divides it; consecutive multiples of p
        // are at most p apart, so this takes O(log n) steps.
        let mut n = target;
        while n >= 8 {
            let p = ceil_log2(n);
            if n.is_multiple_of(p as usize) {
                return Dsn::new(n, p - 1);
            }
            n -= 1;
        }
        Err(TopologyError::UnsupportedSize {
            n: target,
            requirement: "no n >= 8 at or below target has n % ceil_log2(n) == 0".into(),
        })
    }

    /// Number of switches.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of levels / super-node size, `p = ceil(log2 n)`.
    #[inline]
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Size of the shortcut set (levels `1..=x` own shortcuts).
    #[inline]
    pub fn x(&self) -> u32 {
        self.x
    }

    /// `r = n mod p`, the size of the incomplete final super node
    /// (0 when `p` divides `n`).
    #[inline]
    pub fn r(&self) -> usize {
        self.r
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Level of node `v`, in `1..=p` (level `i` is assigned to nodes
    /// `k*p + i - 1`).
    #[inline]
    pub fn level(&self, v: NodeId) -> u32 {
        level_of(v, self.p)
    }

    /// Height of node `v`: `p + 1 - level(v)`. Higher nodes own longer
    /// shortcuts.
    #[inline]
    pub fn height(&self, v: NodeId) -> u32 {
        self.p + 1 - self.level(v)
    }

    /// The target of `v`'s owned shortcut, if `level(v) <= x`.
    #[inline]
    pub fn shortcut(&self, v: NodeId) -> Option<NodeId> {
        self.shortcut[v]
    }

    /// Successor on the ring (clockwise neighbor).
    #[inline]
    pub fn succ(&self, v: NodeId) -> NodeId {
        (v + 1) % self.n
    }

    /// Predecessor on the ring (counter-clockwise neighbor).
    #[inline]
    pub fn pred(&self, v: NodeId) -> NodeId {
        (v + self.n - 1) % self.n
    }

    /// Index of the super node containing `v` (groups of `p` consecutive
    /// ids; the final group may be incomplete when `r != 0`).
    #[inline]
    pub fn super_node(&self, v: NodeId) -> usize {
        v / self.p as usize
    }

    /// Number of super nodes, `ceil(n / p)`.
    #[inline]
    pub fn super_node_count(&self) -> usize {
        div_ceil(self.n, self.p as usize)
    }

    /// Clockwise distance from `a` to `b`.
    #[inline]
    pub fn cw_dist(&self, a: NodeId, b: NodeId) -> usize {
        cw_dist(a, b, self.n)
    }

    /// The required shortcut level for a clockwise distance `d > 0`:
    /// the unique `l >= 1` with `n / 2^l < d <= n / 2^(l-1)`, capped at `p`.
    /// This is the `l = floor(log2(n / d)) + 1` of the routing pseudo-code.
    #[inline]
    pub fn required_level(&self, d: usize) -> u32 {
        required_level(d, self.n, self.p)
    }
}

/// Level of node `v` on a ring with period `p`: `(v mod p) + 1`.
#[inline]
pub fn level_of(v: NodeId, p: u32) -> u32 {
    (v % p as usize) as u32 + 1
}

/// Required level for clockwise distance `d` on a ring of `n` nodes:
/// smallest `l` with `d > n / 2^l`, i.e. `floor(log2(n/d)) + 1`, capped to
/// `p` so degenerate distances stay in range.
#[inline]
pub fn required_level(d: usize, n: usize, p: u32) -> u32 {
    debug_assert!(d > 0 && d < n);
    let mut l = 1u32;
    // Find smallest l with n / 2^l < d  <=>  n < d * 2^l.
    while l < p && (n >> l) >= d {
        l += 1;
    }
    l
}

/// The clockwise-nearest node of level `l + 1` at distance at least
/// `ceil(n / 2^l)` from `i`. Returns `None` only in degenerate cases where
/// no such node exists (never happens for `n >= 8` with `l < p`, but the
/// search is bounded to one full ring turn for safety).
pub fn shortcut_target(i: NodeId, l: u32, n: usize, p: u32) -> Option<NodeId> {
    let min_jump = div_ceil(n, 1usize << l);
    let mut j = (i + min_jump) % n;
    for _ in 0..n {
        if level_of(j, p) == l + 1 && j != i {
            return Some(j);
        }
        j = (j + 1) % n;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        assert!(Dsn::new(4, 1).is_err());
        assert!(Dsn::new(16, 0).is_err());
        // p = ceil(log2 16) = 4 => x in 1..=3
        assert!(Dsn::new(16, 4).is_err());
        assert!(Dsn::new(16, 3).is_ok());
    }

    #[test]
    fn levels_are_periodic() {
        let d = Dsn::new(64, 5).unwrap(); // p = 6
        assert_eq!(d.p(), 6);
        for v in 0..64 {
            assert_eq!(d.level(v), (v % 6) as u32 + 1);
            assert_eq!(d.height(v), 6 + 1 - d.level(v));
        }
    }

    #[test]
    fn paper_figure_1b_dsn_3_16() {
        // DSN-3-16 from Figure 1(b): n = 16, p = 4, x = 3.
        let d = Dsn::new(16, 3).unwrap();
        assert_eq!(d.p(), 4);
        assert_eq!(d.r(), 0);
        // Node 0 (level 1): min jump ceil(16/2) = 8 -> first level-2 node at
        // distance >= 8 clockwise from 0 is node 9 (9 mod 4 = 1 -> level 2).
        assert_eq!(d.shortcut(0), Some(9));
        // Node 1 (level 2): min jump ceil(16/4) = 4 -> first level-3 node at
        // distance >= 4 from 1 is node 6 (6 mod 4 = 2 -> level 3).
        assert_eq!(d.shortcut(1), Some(6));
        // Node 2 (level 3): min jump ceil(16/8) = 2 -> first level-4 node at
        // distance >= 2 from 2 is node 7? 4+3=7 -> level 4 is ids 3,7,11,15.
        // distance >= 2 from 2 means j >= 4; first level-4 id >= 4 is 7.
        assert_eq!(d.shortcut(2), Some(7));
        // Node 3 (level 4 > x = 3): no shortcut.
        assert_eq!(d.shortcut(3), None);
    }

    #[test]
    fn shortcut_spans_at_least_minimum() {
        for &n in &[64usize, 100, 256, 1000, 1024] {
            let p = ceil_log2(n);
            let d = Dsn::new(n, p - 1).unwrap();
            for v in 0..n {
                if let Some(t) = d.shortcut(v) {
                    let l = d.level(v);
                    let min_jump = div_ceil(n, 1usize << l);
                    assert!(
                        d.cw_dist(v, t) >= min_jump,
                        "n={n} v={v} l={l}: jump {} < {min_jump}",
                        d.cw_dist(v, t)
                    );
                    assert_eq!(d.level(t), l + 1, "shortcut must land on level l+1");
                }
            }
        }
    }

    #[test]
    fn every_eligible_node_has_a_shortcut() {
        for &n in &[64usize, 100, 513, 2048] {
            let p = ceil_log2(n);
            for x in [1, p / 2, p - 1] {
                let x = x.max(1);
                let d = Dsn::new(n, x).unwrap();
                for v in 0..n {
                    if d.level(v) <= x {
                        assert!(d.shortcut(v).is_some(), "n={n} x={x} v={v}");
                    } else {
                        assert!(d.shortcut(v).is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn fact1_degree_bounds() {
        // Fact 1: degrees in {2,3,4,5}; avg <= 4; at most p nodes of degree 5.
        for &n in &[64usize, 128, 250, 1024, 1000] {
            let p = ceil_log2(n);
            let d = Dsn::new(n, p - 1).unwrap();
            let g = d.graph();
            let mut deg5 = 0usize;
            for v in 0..n {
                let deg = g.degree(v);
                assert!((2..=5).contains(&deg), "n={n} v={v} deg={deg}");
                if deg == 5 {
                    deg5 += 1;
                }
            }
            assert!(deg5 <= p as usize, "n={n}: {deg5} deg-5 nodes > p={p}");
            assert!(g.avg_degree() <= 4.0 + 1e-9, "n={n} avg={}", g.avg_degree());
        }
    }

    #[test]
    fn observation_expected_degree5_count_at_most_half_p() {
        // The paper's Observation after Fact 1: the *expected* number of
        // degree-5 nodes is <= p/2 (expectation over instance sizes, since
        // deg-5 nodes arise from interactions with the incomplete final
        // super node). Sample every n in one p-band and check the mean.
        let (lo, hi) = (513usize, 1024usize); // p = 10 throughout
        let mut total = 0usize;
        let mut count = 0usize;
        for n in (lo..=hi).step_by(7) {
            let d = Dsn::new(n, 9).unwrap();
            assert_eq!(d.p(), 10);
            total += d.graph().degree_histogram().get(5).copied().unwrap_or(0);
            count += 1;
        }
        let mean = total as f64 / count as f64;
        assert!(mean <= 5.0, "mean deg-5 count {mean} > p/2");
    }

    #[test]
    fn graph_is_connected() {
        for &n in &[16usize, 64, 100, 511, 512, 1024] {
            let p = ceil_log2(n);
            for x in 1..p {
                let d = Dsn::new(n, x).unwrap();
                assert!(d.graph().is_connected(), "n={n} x={x}");
            }
        }
    }

    #[test]
    fn required_level_matches_definition() {
        let n = 1024usize;
        let p = 10u32;
        for d in 1..n {
            let l = required_level(d, n, p);
            // n / 2^l < d (unless capped at p) and d <= n / 2^(l-1)
            if l < p {
                assert!(n >> l < d, "d={d} l={l}");
            }
            assert!(d <= n >> (l - 1), "d={d} l={l}");
        }
    }

    #[test]
    fn clean_constructor_is_multiple_of_p() {
        let d = Dsn::new_clean(1024).unwrap();
        assert_eq!(d.n() % d.p() as usize, 0);
        assert_eq!(d.r(), 0);
        assert_eq!(d.x(), d.p() - 1);
        let d = Dsn::new_clean(1000).unwrap();
        assert_eq!(d.n() % d.p() as usize, 0);
        // Every target must either yield a clean instance no larger than
        // the target (r = 0, n a multiple of its own p, maximal such n)
        // or be honestly rejected — including the boundary-crossing cases
        // like 9 and 17 where the old "round once" logic broke.
        for target in 8..=4096usize {
            match Dsn::new_clean(target) {
                Ok(d) => {
                    assert!(d.n() <= target, "target {target}: n {} too big", d.n());
                    assert_eq!(d.n() % d.p() as usize, 0, "target {target}");
                    assert_eq!(d.r(), 0, "target {target}");
                    assert_eq!(d.x(), d.p() - 1, "target {target}");
                    // Maximality: nothing between n and target is clean.
                    for m in (d.n() + 1)..=target {
                        assert_ne!(
                            m % ceil_log2(m) as usize,
                            0,
                            "target {target}: skipped clean n = {m}"
                        );
                    }
                }
                Err(_) => {
                    for m in 8..=target {
                        assert_ne!(
                            m % ceil_log2(m) as usize,
                            0,
                            "target {target} rejected but {m} is clean"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn succ_pred_roundtrip() {
        let d = Dsn::new(100, 3).unwrap();
        for v in 0..100 {
            assert_eq!(d.pred(d.succ(v)), v);
            assert_eq!(d.succ(d.pred(v)), v);
        }
        assert_eq!(d.succ(99), 0);
        assert_eq!(d.pred(0), 99);
    }

    #[test]
    fn super_nodes_partition_ring() {
        let d = Dsn::new(64, 5).unwrap(); // p = 6, r = 4
        assert_eq!(d.super_node_count(), 11);
        assert_eq!(d.super_node(0), 0);
        assert_eq!(d.super_node(5), 0);
        assert_eq!(d.super_node(6), 1);
        assert_eq!(d.super_node(63), 10);
    }
}
