//! Classic low-degree / low-diameter families from the paper's related-work
//! section (Section III): hypercube, cube-connected cycles, and de Bruijn
//! graphs. These let the `related_work` experiment reproduce the quoted
//! diameter-and-degree pairs (De Bruijn 12-and-4 at 3072 vertices, CCC
//! 23-and-3, ...).

use crate::error::{Result, TopologyError};
use crate::graph::{Graph, LinkKind};

/// Binary hypercube on `2^dim` nodes; degree `dim`, diameter `dim`.
#[derive(Debug, Clone)]
pub struct Hypercube {
    dim: u32,
    graph: Graph,
}

impl Hypercube {
    /// Build a `dim`-dimensional hypercube (`1 <= dim <= 30`).
    pub fn new(dim: u32) -> Result<Self> {
        if dim == 0 || dim > 30 {
            return Err(TopologyError::InvalidParameter {
                name: "dim",
                constraint: "1 <= dim <= 30".into(),
                value: dim.to_string(),
            });
        }
        let n = 1usize << dim;
        let mut graph = Graph::new(n);
        for v in 0..n {
            for bit in 0..dim {
                let u = v ^ (1usize << bit);
                if v < u {
                    graph.add_edge(v, u, LinkKind::Hypercube { bit: bit as u8 });
                }
            }
        }
        Ok(Hypercube { dim, graph })
    }

    /// Dimension (= degree = diameter).
    #[inline]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

/// Cube-Connected Cycles CCC(dim): each hypercube node is replaced by a
/// `dim`-cycle; constant degree 3 for `dim >= 3`.
#[derive(Debug, Clone)]
pub struct CubeConnectedCycles {
    dim: u32,
    graph: Graph,
}

impl CubeConnectedCycles {
    /// Build CCC(dim) on `dim * 2^dim` nodes. Requires `3 <= dim <= 25`.
    ///
    /// Node `(w, i)` (cube vertex `w`, cycle position `i`) is numbered
    /// `w * dim + i`; cycle links join consecutive positions, and the cube
    /// link at position `i` joins `(w, i)` to `(w ^ 2^i, i)`.
    pub fn new(dim: u32) -> Result<Self> {
        if !(3..=25).contains(&dim) {
            return Err(TopologyError::InvalidParameter {
                name: "dim",
                constraint: "3 <= dim <= 25".into(),
                value: dim.to_string(),
            });
        }
        let d = dim as usize;
        let cube = 1usize << dim;
        let n = cube * d;
        let mut graph = Graph::new(n);
        for w in 0..cube {
            for i in 0..d {
                let v = w * d + i;
                // cycle link to (w, i+1 mod dim), owned by lower i
                let j = (i + 1) % d;
                if i < j {
                    graph.add_edge(v, w * d + j, LinkKind::Cycle);
                } else {
                    // wrap (d-1 -> 0): for d >= 3 this is not a duplicate
                    graph.add_edge(w * d + j, v, LinkKind::Cycle);
                }
                // cube link
                let w2 = w ^ (1usize << i);
                if w < w2 {
                    graph.add_edge(v, w2 * d + i, LinkKind::Hypercube { bit: i as u8 });
                }
            }
        }
        Ok(CubeConnectedCycles { dim, graph })
    }

    /// Cube dimension.
    #[inline]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of nodes (`dim * 2^dim`).
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

/// Undirected de Bruijn graph B(base, dim) on `base^dim` nodes: node `v` is
/// adjacent to `(v * base + a) mod n` for every digit `a` (shuffle links,
/// made undirected).
#[derive(Debug, Clone)]
pub struct DeBruijn {
    base: usize,
    dim: u32,
    graph: Graph,
}

impl DeBruijn {
    /// Build B(base, dim). Requires `base >= 2`, `dim >= 2`, and
    /// `base^dim <= 2^26` to bound memory.
    pub fn new(base: usize, dim: u32) -> Result<Self> {
        if base < 2 {
            return Err(TopologyError::InvalidParameter {
                name: "base",
                constraint: "base >= 2".into(),
                value: base.to_string(),
            });
        }
        if dim < 2 {
            return Err(TopologyError::InvalidParameter {
                name: "dim",
                constraint: "dim >= 2".into(),
                value: dim.to_string(),
            });
        }
        let n = base.checked_pow(dim).filter(|&n| n <= 1 << 26).ok_or(
            TopologyError::UnsupportedSize {
                n: 0,
                requirement: "base^dim <= 2^26".into(),
            },
        )?;
        let mut graph = Graph::new(n);
        for v in 0..n {
            for a in 0..base {
                let u = (v * base + a) % n;
                if u != v {
                    graph.add_edge_dedup(v.min(u), v.max(u), LinkKind::Shuffle);
                }
            }
        }
        Ok(DeBruijn { base, dim, graph })
    }

    /// Digit base (out-degree of the directed version).
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Word length (= directed diameter).
    #[inline]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of nodes (`base^dim`).
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bfs_ecc(g: &Graph, s: usize) -> usize {
        let mut dist = vec![usize::MAX; g.node_count()];
        let mut q = std::collections::VecDeque::new();
        dist[s] = 0;
        q.push_back(s);
        let mut ecc = 0;
        while let Some(v) = q.pop_front() {
            for (u, _) in g.neighbors(v) {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    ecc = ecc.max(dist[u]);
                    q.push_back(u);
                }
            }
        }
        assert!(dist.iter().all(|&d| d != usize::MAX), "graph disconnected");
        ecc
    }

    #[test]
    fn hypercube_properties() {
        let h = Hypercube::new(5).unwrap();
        assert_eq!(h.n(), 32);
        for v in 0..32 {
            assert_eq!(h.graph().degree(v), 5);
        }
        assert_eq!(bfs_ecc(h.graph(), 0), 5);
    }

    #[test]
    fn ccc_degree_3() {
        let c = CubeConnectedCycles::new(3).unwrap();
        assert_eq!(c.n(), 24);
        for v in 0..24 {
            assert_eq!(c.graph().degree(v), 3, "v={v}");
        }
        assert!(c.graph().is_connected());
    }

    #[test]
    fn ccc_paper_size() {
        // Section III: CCC has 23-and-3 — degree 3; dim = 8 gives 2048 nodes.
        let c = CubeConnectedCycles::new(8).unwrap();
        assert_eq!(c.n(), 2048);
        assert_eq!(c.graph().max_degree(), 3);
    }

    #[test]
    fn debruijn_degree_and_diameter() {
        // Directed B(2, k) has out-degree 2 and diameter k; the undirected
        // version has degree <= 4 and diameter <= k.
        let d = DeBruijn::new(2, 8).unwrap();
        assert_eq!(d.n(), 256);
        assert!(d.graph().max_degree() <= 4);
        assert!(bfs_ecc(d.graph(), 0) <= 8);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Hypercube::new(0).is_err());
        assert!(CubeConnectedCycles::new(2).is_err());
        assert!(DeBruijn::new(1, 4).is_err());
        assert!(DeBruijn::new(2, 1).is_err());
    }
}
