//! Kautz graphs K(d, n) — the shuffle-based family the paper's related
//! work quotes as "Kautz has 11-and-4" (diameter-and-degree) near 3k
//! vertices.
//!
//! Vertices are strings `s_0 s_1 ... s_n` over an alphabet of `d + 1`
//! symbols with `s_i != s_{i+1}`; there are `(d+1) * d^n` of them. The
//! directed edges shift the string left and append any symbol different
//! from the last; we build the undirected version (degree at most `2d`).

use crate::error::{Result, TopologyError};
use crate::graph::{Graph, LinkKind};
use crate::NodeId;

/// Kautz graph K(d, n) on `(d+1) * d^n` vertices.
#[derive(Debug, Clone)]
pub struct Kautz {
    d: usize,
    len: u32,
    graph: Graph,
}

impl Kautz {
    /// Build K(d, n). Requires `d >= 2`, `n >= 1`, and at most `2^24`
    /// vertices.
    pub fn new(d: usize, n: u32) -> Result<Self> {
        if d < 2 {
            return Err(TopologyError::InvalidParameter {
                name: "d",
                constraint: "d >= 2".into(),
                value: d.to_string(),
            });
        }
        if n < 1 {
            return Err(TopologyError::InvalidParameter {
                name: "n",
                constraint: "n >= 1".into(),
                value: n.to_string(),
            });
        }
        let count = (d + 1)
            .checked_mul(d.checked_pow(n).ok_or(TopologyError::UnsupportedSize {
                n: 0,
                requirement: "(d+1) * d^n within usize".into(),
            })?)
            .filter(|&c| c <= 1 << 24)
            .ok_or(TopologyError::UnsupportedSize {
                n: 0,
                requirement: "(d+1) * d^n <= 2^24".into(),
            })?;

        let mut graph = Graph::new(count);
        for v in 0..count {
            let word = Self::word_of(v, d, n);
            // shift left, append any a != last symbol
            for a in 0..=d {
                if a == *word.last().unwrap() {
                    continue;
                }
                let mut next = word[1..].to_vec();
                next.push(a);
                let u = Self::id_of(&next, d);
                if u != v {
                    graph.add_edge_dedup(v.min(u), v.max(u), LinkKind::Shuffle);
                }
            }
        }
        Ok(Kautz { d, len: n, graph })
    }

    /// Decode vertex `v` into its symbol word of length `n + 1`.
    fn word_of(v: NodeId, d: usize, n: u32) -> Vec<usize> {
        // v = s0 * d^n + sum_{i=1..n} c_i * d^(n-i), where c_i in 0..d
        // encodes s_i relative to s_{i-1} (skipping equality).
        let mut rest = v;
        let mut pow = d.pow(n);
        let s0 = rest / pow;
        rest %= pow;
        let mut word = vec![s0];
        for _ in 0..n {
            pow /= d;
            let c = rest / pow;
            rest %= pow;
            let prev = *word.last().unwrap();
            let s = if c < prev { c } else { c + 1 };
            word.push(s);
        }
        word
    }

    /// Inverse of [`Self::word_of`].
    fn id_of(word: &[usize], d: usize) -> NodeId {
        let mut v = word[0];
        for i in 1..word.len() {
            let prev = word[i - 1];
            let s = word[i];
            debug_assert_ne!(prev, s, "Kautz words never repeat symbols");
            let c = if s < prev { s } else { s - 1 };
            v = v * d + c;
        }
        v
    }

    /// Alphabet parameter `d` (directed out-degree).
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Word length parameter `n` (= directed diameter).
    #[inline]
    pub fn word_len(&self) -> u32 {
        self.len
    }

    /// Number of vertices, `(d+1) * d^n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bfs_ecc(g: &Graph, s: usize) -> usize {
        let mut dist = vec![usize::MAX; g.node_count()];
        let mut q = std::collections::VecDeque::new();
        dist[s] = 0;
        q.push_back(s);
        let mut ecc = 0;
        while let Some(v) = q.pop_front() {
            for u in g.neighbor_ids(v) {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    ecc = ecc.max(dist[u]);
                    q.push_back(u);
                }
            }
        }
        assert!(dist.iter().all(|&d| d != usize::MAX), "disconnected");
        ecc
    }

    #[test]
    fn word_roundtrip() {
        let (d, n) = (3usize, 4u32);
        let count = (d + 1) * d.pow(n);
        for v in (0..count).step_by(7) {
            let w = Kautz::word_of(v, d, n);
            assert_eq!(w.len(), n as usize + 1);
            for pair in w.windows(2) {
                assert_ne!(pair[0], pair[1]);
            }
            assert_eq!(Kautz::id_of(&w, d), v);
        }
    }

    #[test]
    fn sizes_and_degree() {
        let k = Kautz::new(2, 3).unwrap();
        assert_eq!(k.n(), 3 * 8); // (d+1) d^n = 3 * 2^3
        assert!(k.graph().max_degree() <= 4); // 2d
        assert!(k.graph().is_connected());
    }

    #[test]
    fn diameter_is_logarithmic() {
        // Directed Kautz on words of length n + 1 has diameter n + 1
        // (shift in the whole target word); undirected <= n + 1.
        let k = Kautz::new(3, 4).unwrap(); // 4 * 81 = 324 vertices
        assert!(bfs_ecc(k.graph(), 0) <= 5);
    }

    #[test]
    fn paper_scale_instance() {
        // Near the paper's 3k-vertex examples: K(4, 4) = 5 * 256 = 1280,
        // K(4, 5) = 5 * 1024 = 5120; check the smaller one fully.
        let k = Kautz::new(4, 4).unwrap();
        assert_eq!(k.n(), 1280);
        assert!(k.graph().max_degree() <= 8);
        assert!(bfs_ecc(k.graph(), 0) <= 5);
    }

    #[test]
    fn invalid_rejected() {
        assert!(Kautz::new(1, 3).is_err());
        assert!(Kautz::new(2, 0).is_err());
    }
}
