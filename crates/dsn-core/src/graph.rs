//! Compact undirected multigraph substrate used by every topology.
//!
//! Interconnection networks are sparse (degree 3–6 here), so we store an
//! explicit edge list plus a per-node adjacency vector of `(neighbor, edge)`
//! pairs. Parallel edges are allowed on purpose: the DSN-E extension adds a
//! second physical "Up"/"Extra" link alongside an existing ring link, and the
//! two must remain distinct channels for deadlock analysis.

use std::fmt;

/// Index of a node (switch) in a topology. Nodes are always `0..n`.
pub type NodeId = usize;

/// Index into [`Graph::edges`].
pub type EdgeId = usize;

/// Role of a physical link. The routing crates dispatch on this, and the
/// layout crate uses it to report per-class cable statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkKind {
    /// Local ring link between consecutive node IDs (`pred`/`succ`).
    Ring,
    /// A DSN/DLN distance-halving shortcut created for the given level
    /// (`1`-based; a level-`l` shortcut spans at least `ceil(n / 2^l)`).
    Shortcut {
        /// Level of the node that owns the shortcut.
        level: u32,
    },
    /// DSN-E dedicated uphill link (parallel to a ring link, used only by
    /// the PRE-WORK phase of deadlock-free routing).
    Up,
    /// DSN-E extra link near node 0 breaking the FINISH-phase ring cycle.
    Extra,
    /// DSN-D-x short skip link added inside super nodes.
    Skip,
    /// Torus / mesh link along the given dimension.
    Torus {
        /// Dimension index (0-based).
        dim: u8,
        /// True when this is the wrap-around link of that dimension.
        wrap: bool,
    },
    /// Base grid link of a Kleinberg small-world lattice.
    Grid,
    /// Uniform-random shortcut (DLN-x-y, random regular graphs).
    Random,
    /// Kleinberg long-range contact (distance-biased random).
    LongRange,
    /// Hypercube link flipping the given bit.
    Hypercube {
        /// Bit position flipped by this link.
        bit: u8,
    },
    /// Local cycle link of a cube-connected-cycles node group.
    Cycle,
    /// Shuffle link of a de Bruijn graph.
    Shuffle,
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkKind::Ring => write!(f, "ring"),
            LinkKind::Shortcut { level } => write!(f, "shortcut(l={level})"),
            LinkKind::Up => write!(f, "up"),
            LinkKind::Extra => write!(f, "extra"),
            LinkKind::Skip => write!(f, "skip"),
            LinkKind::Torus { dim, wrap } => write!(f, "torus(d={dim},wrap={wrap})"),
            LinkKind::Grid => write!(f, "grid"),
            LinkKind::Random => write!(f, "random"),
            LinkKind::LongRange => write!(f, "long-range"),
            LinkKind::Hypercube { bit } => write!(f, "hypercube(bit={bit})"),
            LinkKind::Cycle => write!(f, "cycle"),
            LinkKind::Shuffle => write!(f, "shuffle"),
        }
    }
}

/// An undirected physical link between two switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Link role, used by routing and layout analyses.
    pub kind: LinkKind,
}

impl Edge {
    /// The endpoint of this edge that is not `from`.
    ///
    /// # Panics
    /// Panics if `from` is not an endpoint of the edge.
    #[inline]
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else {
            debug_assert_eq!(from, self.b, "node {from} is not an endpoint");
            self.a
        }
    }
}

/// Undirected multigraph with typed edges.
///
/// Construction is append-only; analyses treat the graph as immutable.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// `adj[v]` lists `(neighbor, edge_id)` pairs in insertion order.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Create an empty graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges (parallel edges counted individually).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge by id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id]
    }

    /// Add an undirected edge. Parallel edges and distinct kinds are allowed;
    /// self-loops are rejected because no interconnect wires a switch port to
    /// itself.
    ///
    /// # Panics
    /// Panics on a self-loop or an out-of-range endpoint.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, kind: LinkKind) -> EdgeId {
        assert!(a != b, "self-loop {a}->{b} rejected");
        assert!(a < self.n && b < self.n, "endpoint out of range");
        let id = self.edges.len();
        self.edges.push(Edge { a, b, kind });
        self.adj[a].push((b, id));
        self.adj[b].push((a, id));
        id
    }

    /// Add the edge only if no edge (of any kind) already joins `a` and `b`.
    /// Returns the id of the new edge, or `None` if a parallel edge existed.
    pub fn add_edge_dedup(&mut self, a: NodeId, b: NodeId, kind: LinkKind) -> Option<EdgeId> {
        if self.has_edge(a, b) {
            None
        } else {
            Some(self.add_edge(a, b, kind))
        }
    }

    /// Move the `from` endpoint of edge `id` to node `to`, keeping the
    /// edge's id, kind, and other endpoint. This is the primitive for
    /// degree-preserving rewiring searches (`dsn-opt`): a pair of
    /// retargets implements a link exchange without renumbering edges.
    ///
    /// Both adjacency lists are updated in place; `from` loses the edge,
    /// `to` gains it, and the untouched endpoint keeps its insertion-order
    /// slot. The caller is responsible for parallel-edge policy (check
    /// [`Graph::has_edge`] first if duplicates are unwanted).
    ///
    /// # Panics
    /// Panics if `id` is out of range, `from` is not an endpoint of the
    /// edge, `to` is out of range, or the move would create a self-loop
    /// (`to` equal to the other endpoint).
    pub fn retarget_edge(&mut self, id: EdgeId, from: NodeId, to: NodeId) {
        assert!(id < self.edges.len(), "edge {id} out of range");
        assert!(to < self.n, "endpoint out of range");
        let e = self.edges[id];
        let other = if from == e.a {
            e.b
        } else {
            assert_eq!(from, e.b, "node {from} is not an endpoint of edge {id}");
            e.a
        };
        assert!(to != other, "self-loop {other}->{to} rejected");
        if to == from {
            return;
        }
        let slot = self.adj[from]
            .iter()
            .position(|&(_, eid)| eid == id)
            .expect("adjacency list out of sync");
        self.adj[from].remove(slot);
        for entry in self.adj[other].iter_mut() {
            if entry.1 == id {
                entry.0 = to;
            }
        }
        self.adj[to].push((other, id));
        if from == e.a {
            self.edges[id].a = to;
        } else {
            self.edges[id].b = to;
        }
    }

    /// Whether any edge joins `a` and `b`.
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        let (probe, other) = if self.adj[a].len() <= self.adj[b].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[probe].iter().any(|&(v, _)| v == other)
    }

    /// Degree of `v` (parallel edges each count once).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Neighbors of `v` with the connecting edge id, in insertion order.
    /// A neighbor reachable over two parallel links appears twice.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adj[v].iter().copied()
    }

    /// Neighbor node ids only.
    #[inline]
    pub fn neighbor_ids(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v].iter().map(|&(u, _)| u)
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Average degree, `2 * |E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.n as f64
        }
    }

    /// Histogram of node degrees: `hist[d]` = number of nodes with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_degree() + 1];
        for a in &self.adj {
            hist[a.len()] += 1;
        }
        hist
    }

    /// Number of edges of each kind, sorted by kind for deterministic output.
    pub fn edge_kind_counts(&self) -> Vec<(LinkKind, usize)> {
        let mut counts: Vec<(LinkKind, usize)> = Vec::new();
        for e in &self.edges {
            match counts.iter_mut().find(|(k, _)| *k == e.kind) {
                Some((_, c)) => *c += 1,
                None => counts.push((e.kind, 1)),
            }
        }
        counts.sort_by_key(|a| a.0);
        counts
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for (u, _) in self.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.n
    }

    /// A copy of the graph with the given edges removed (fault injection).
    /// Edge ids are re-assigned densely in the surviving insertion order.
    pub fn without_edges(&self, failed: &[EdgeId]) -> Graph {
        let mut dead = vec![false; self.edges.len()];
        for &e in failed {
            assert!(e < self.edges.len(), "edge {e} out of range");
            dead[e] = true;
        }
        let mut g = Graph::new(self.n);
        for (i, e) in self.edges.iter().enumerate() {
            if !dead[i] {
                g.add_edge(e.a, e.b, e.kind);
            }
        }
        g
    }

    /// The set of directed channels: each undirected edge yields two, one per
    /// direction. Channel `2*e` goes `a -> b`; channel `2*e + 1` goes
    /// `b -> a`. Simulators and CDG analysis use this numbering.
    #[inline]
    pub fn channel_count(&self) -> usize {
        self.edges.len() * 2
    }

    /// Directed channel id for traversing `edge` out of node `from`.
    #[inline]
    pub fn channel_id(&self, edge: EdgeId, from: NodeId) -> usize {
        let e = &self.edges[edge];
        if from == e.a {
            2 * edge
        } else {
            debug_assert_eq!(from, e.b);
            2 * edge + 1
        }
    }

    /// `(source, destination)` endpoints of a directed channel id.
    #[inline]
    pub fn channel_endpoints(&self, channel: usize) -> (NodeId, NodeId) {
        let e = &self.edges[channel / 2];
        if channel.is_multiple_of(2) {
            (e.a, e.b)
        } else {
            (e.b, e.a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, LinkKind::Ring);
        g.add_edge(1, 2, LinkKind::Ring);
        g.add_edge(2, 0, LinkKind::Ring);
        g
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_listed_once_per_edge() {
        let mut g = triangle();
        // add a parallel edge: neighbor 1 now appears twice from node 0
        g.add_edge(0, 1, LinkKind::Up);
        let nbrs: Vec<NodeId> = g.neighbor_ids(0).collect();
        assert_eq!(nbrs.iter().filter(|&&v| v == 1).count(), 2);
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn dedup_rejects_parallel() {
        let mut g = triangle();
        assert!(g.add_edge_dedup(0, 1, LinkKind::Random).is_none());
        assert!(g.add_edge_dedup(0, 1, LinkKind::Ring).is_none());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1, LinkKind::Ring);
    }

    #[test]
    fn retarget_moves_one_endpoint() {
        let mut g = Graph::new(4);
        let e = g.add_edge(0, 1, LinkKind::Random);
        g.add_edge(1, 2, LinkKind::Ring);
        g.retarget_edge(e, 1, 3); // 0-1 becomes 0-3
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2), "unrelated edge untouched");
        assert_eq!(g.edge(e).kind, LinkKind::Random, "kind preserved");
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(3), 1);
        // adjacency stays consistent with the edge list
        assert_eq!(g.neighbors(3).collect::<Vec<_>>(), vec![(0, e)]);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(3, e)]);
    }

    #[test]
    fn retarget_to_same_node_is_noop() {
        let mut g = triangle();
        let before = g.edges().to_vec();
        g.retarget_edge(0, 1, 1);
        assert_eq!(g.edges(), &before[..]);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn retarget_pair_implements_link_exchange() {
        // (0-1, 2-3) -> (0-2, 1-3): a degree-preserving double swap.
        let mut g = Graph::new(4);
        let e1 = g.add_edge(0, 1, LinkKind::Random);
        let e2 = g.add_edge(2, 3, LinkKind::Random);
        let before = g.degree_histogram();
        g.retarget_edge(e1, 1, 2);
        g.retarget_edge(e2, 2, 1);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(2, 3));
        assert_eq!(g.degree_histogram(), before);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn retarget_rejects_self_loop() {
        let mut g = triangle();
        g.retarget_edge(0, 1, 0); // edge 0 joins 0-1; moving 1 onto 0
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn retarget_rejects_non_endpoint() {
        let mut g = triangle();
        g.retarget_edge(0, 2, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn retarget_rejects_bad_target() {
        let mut g = triangle();
        g.retarget_edge(0, 1, 9);
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_connected());
        let mut g = Graph::new(4);
        g.add_edge(0, 1, LinkKind::Ring);
        g.add_edge(2, 3, LinkKind::Ring);
        assert!(!g.is_connected());
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
    }

    #[test]
    fn channels_are_paired() {
        let g = triangle();
        assert_eq!(g.channel_count(), 6);
        for e in 0..g.edge_count() {
            let Edge { a, b, .. } = *g.edge(e);
            let ab = g.channel_id(e, a);
            let ba = g.channel_id(e, b);
            assert_eq!(ab ^ 1, ba);
            assert_eq!(g.channel_endpoints(ab), (a, b));
            assert_eq!(g.channel_endpoints(ba), (b, a));
        }
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle();
        let e = g.edge(0);
        assert_eq!(e.other(0), 1);
        assert_eq!(e.other(1), 0);
    }

    #[test]
    fn degree_histogram_shape() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, LinkKind::Ring);
        g.add_edge(1, 2, LinkKind::Ring);
        // degrees: 1, 2, 1, 0
        assert_eq!(g.degree_histogram(), vec![1, 2, 1]);
    }

    #[test]
    fn without_edges_removes_and_renumbers() {
        let g = triangle();
        let g2 = g.without_edges(&[1]);
        assert_eq!(g2.edge_count(), 2);
        assert_eq!(g2.node_count(), 3);
        assert!(g2.has_edge(0, 1));
        assert!(!g2.has_edge(1, 2));
        assert!(g2.has_edge(2, 0));
        // original untouched
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn without_edges_empty_list_copies() {
        let g = triangle();
        let g2 = g.without_edges(&[]);
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn without_edges_checks_ids() {
        triangle().without_edges(&[99]);
    }

    #[test]
    fn kind_counts() {
        let mut g = triangle();
        g.add_edge(0, 1, LinkKind::Up);
        let counts = g.edge_kind_counts();
        assert!(counts.contains(&(LinkKind::Ring, 3)));
        assert!(counts.contains(&(LinkKind::Up, 1)));
    }
}
