//! Fully random regular graphs (Jellyfish-style, NSDI 2012), cited by the
//! paper as the other way random topologies are generated ("either as fully
//! random graphs \[9\] or by adding random shortcuts to classical topologies").
//!
//! Construction is the classic stub-matching (configuration model) with
//! rejection of self-loops and parallel edges, plus a local edge-swap repair
//! pass, which converges quickly for the small degrees used here.

use crate::error::{Result, TopologyError};
use crate::graph::{Graph, LinkKind, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// A uniformly random `d`-regular graph on `n` nodes.
#[derive(Debug, Clone)]
pub struct RandomRegular {
    d: u32,
    seed: u64,
    graph: Graph,
}

impl RandomRegular {
    /// Build a random `d`-regular graph. Requires `n * d` even, `d < n`,
    /// and `d >= 2` (for a chance at connectivity).
    pub fn new(n: usize, d: u32, seed: u64) -> Result<Self> {
        if !(n * d as usize).is_multiple_of(2) {
            return Err(TopologyError::InvalidParameter {
                name: "d",
                constraint: "n * d must be even".into(),
                value: format!("n = {n}, d = {d}"),
            });
        }
        if d as usize >= n || d < 2 {
            return Err(TopologyError::InvalidParameter {
                name: "d",
                constraint: "2 <= d < n".into(),
                value: d.to_string(),
            });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        const MAX_ATTEMPTS: usize = 200;
        for _ in 0..MAX_ATTEMPTS {
            if let Some(graph) = Self::try_build(n, d, &mut rng) {
                if graph.is_connected() {
                    return Ok(RandomRegular { d, seed, graph });
                }
            }
        }
        Err(TopologyError::ConstructionFailed(format!(
            "no connected {d}-regular graph on {n} nodes after {MAX_ATTEMPTS} attempts"
        )))
    }

    fn try_build(n: usize, d: u32, rng: &mut SmallRng) -> Option<Graph> {
        // Stub matching.
        let mut stubs: Vec<NodeId> = (0..n)
            .flat_map(|v| std::iter::repeat_n(v, d as usize))
            .collect();
        stubs.shuffle(rng);
        let mut pairs: Vec<(NodeId, NodeId)> = stubs
            .chunks_exact(2)
            .map(|c| (c[0].min(c[1]), c[0].max(c[1])))
            .collect();

        // Repair self-loops / duplicates by random swaps.
        use std::collections::HashSet;
        const MAX_SWAPS: usize = 10_000;
        let mut swaps = 0usize;
        loop {
            let mut seen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(pairs.len());
            let mut bad: Vec<usize> = Vec::new();
            for (i, &(a, b)) in pairs.iter().enumerate() {
                if a == b || !seen.insert((a, b)) {
                    bad.push(i);
                }
            }
            if bad.is_empty() {
                break;
            }
            swaps += bad.len();
            if swaps > MAX_SWAPS {
                return None;
            }
            for i in bad {
                // Swap one endpoint with a random other pair.
                let j = rng.gen_range(0..pairs.len());
                if i == j {
                    continue;
                }
                let (a, b) = pairs[i];
                let (c, d2) = pairs[j];
                pairs[i] = (a.min(d2), a.max(d2));
                pairs[j] = (c.min(b), c.max(b));
            }
        }

        let mut graph = Graph::new(n);
        for (a, b) in pairs {
            graph.add_edge(a, b, LinkKind::Random);
        }
        Some(graph)
    }

    /// The degree `d`.
    #[inline]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// RNG seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regularity() {
        for &(n, d) in &[(16usize, 3u32), (64, 4), (100, 4), (128, 6)] {
            let g = RandomRegular::new(n, d, 42).unwrap();
            for v in 0..n {
                assert_eq!(g.graph().degree(v), d as usize, "n={n} d={d} v={v}");
            }
            assert!(g.graph().is_connected());
        }
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = RandomRegular::new(200, 4, 7).unwrap();
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for e in g.graph().edges() {
            assert_ne!(e.a, e.b);
            assert!(seen.insert((e.a.min(e.b), e.a.max(e.b))), "duplicate edge");
        }
    }

    #[test]
    fn reproducible_by_seed() {
        let a = RandomRegular::new(64, 4, 3).unwrap();
        let b = RandomRegular::new(64, 4, 3).unwrap();
        assert_eq!(a.graph().edges(), b.graph().edges());
    }

    #[test]
    fn odd_degree_odd_n_rejected() {
        assert!(RandomRegular::new(15, 3, 0).is_err());
        assert!(RandomRegular::new(8, 1, 0).is_err());
        assert!(RandomRegular::new(4, 4, 0).is_err());
    }
}
