//! Distributed Loop Networks: **DLN-x** and the random-shortcut variant
//! **DLN-x-y** of Koibuchi et al. (ISCA 2012), the paper's "RANDOM"
//! baseline.
//!
//! DLN-x arranges `n` vertices on a ring and adds, for every vertex `i`, a
//! shortcut to `j = (i + ceil(n / 2^k)) mod n` for `k = 1, ..., x - 2`
//! (total degree `x`). DLN-x-y further adds `y` uniform-random links per
//! node; we realize them as `y` random perfect matchings so that DLN-2-2 has
//! exactly degree 4, matching the paper's statement that RANDOM "has an
//! exact degree 4".

use crate::error::{Result, TopologyError};
use crate::graph::{Graph, LinkKind, NodeId};
use crate::util::div_ceil;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic DLN-x: ring plus `x - 2` halving shortcuts per node.
#[derive(Debug, Clone)]
pub struct Dln {
    x: u32,
    graph: Graph,
}

impl Dln {
    /// Build DLN-x on `n` vertices. Requires `n >= 4` and `x >= 2`
    /// (degree-`x`; `x = 2` is the plain ring).
    pub fn new(n: usize, x: u32) -> Result<Self> {
        if n < 4 {
            return Err(TopologyError::UnsupportedSize {
                n,
                requirement: "n >= 4".into(),
            });
        }
        if x < 2 {
            return Err(TopologyError::InvalidParameter {
                name: "x",
                constraint: "x >= 2".into(),
                value: x.to_string(),
            });
        }
        let mut graph = Graph::new(n);
        for i in 0..n {
            let j = (i + 1) % n;
            graph.add_edge(i.min(j), i.max(j), LinkKind::Ring);
        }
        for k in 1..=(x.saturating_sub(2)) {
            let jump = div_ceil(n, 1usize << k);
            if jump <= 1 || jump >= n {
                continue; // degenerate: coincides with ring links
            }
            for i in 0..n {
                let j = (i + jump) % n;
                graph.add_edge_dedup(i, j, LinkKind::Shortcut { level: k });
            }
        }
        Ok(Dln { x, graph })
    }

    /// The degree parameter `x`.
    #[inline]
    pub fn x(&self) -> u32 {
        self.x
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

/// DLN-x-y: DLN-x plus `y` random links per node, realized as `y` random
/// perfect matchings (seeded, reproducible).
#[derive(Debug, Clone)]
pub struct DlnRandom {
    x: u32,
    y: u32,
    seed: u64,
    graph: Graph,
}

impl DlnRandom {
    /// Build DLN-x-y on `n` vertices with a deterministic `seed`.
    ///
    /// Each of the `y` rounds draws a random perfect matching over all `n`
    /// vertices (for odd `n` one vertex per round is left unmatched), so
    /// every node gains exactly `y` random links for even `n`. Matchings
    /// that would duplicate an existing link are re-paired locally; after
    /// `MAX_RETRIES` the duplicate pair is skipped, which only occurs for
    /// tiny `n`.
    pub fn new(n: usize, x: u32, y: u32, seed: u64) -> Result<Self> {
        let base = Dln::new(n, x)?;
        let mut graph = base.into_graph();
        let mut rng = SmallRng::seed_from_u64(seed);
        const MAX_RETRIES: usize = 64;

        for _round in 0..y {
            let mut order: Vec<NodeId> = (0..n).collect();
            let mut placed = false;
            'retry: for _ in 0..MAX_RETRIES {
                order.shuffle(&mut rng);
                // Check the whole matching before inserting any edge so a
                // failed attempt leaves the graph untouched.
                for pair in order.chunks_exact(2) {
                    if graph.has_edge(pair[0], pair[1]) {
                        continue 'retry;
                    }
                }
                for pair in order.chunks_exact(2) {
                    graph.add_edge(pair[0], pair[1], LinkKind::Random);
                }
                placed = true;
                break;
            }
            if !placed {
                // Fall back to inserting pairwise, skipping duplicates; keeps
                // construction total for degenerate tiny rings.
                order.shuffle(&mut rng);
                for pair in order.chunks_exact(2) {
                    graph.add_edge_dedup(pair[0], pair[1], LinkKind::Random);
                }
            }
        }
        Ok(DlnRandom { x, y, seed, graph })
    }

    /// The base degree parameter `x`.
    #[inline]
    pub fn x(&self) -> u32 {
        self.x
    }

    /// Number of random links per node.
    #[inline]
    pub fn y(&self) -> u32 {
        self.y
    }

    /// RNG seed used for the matchings.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Average length (in ring hops) of the random shortcut links — Theorem
    /// 2b compares this (≈ n/3 for DLN-2-2) against DSN's ≤ n/p.
    pub fn avg_random_link_ring_length(&self) -> f64 {
        let n = self.n();
        let (sum, count) = self
            .graph
            .edges()
            .iter()
            .filter(|e| e.kind == LinkKind::Random)
            .fold((0usize, 0usize), |(s, c), e| {
                (s + crate::util::ring_dist(e.a, e.b, n), c + 1)
            });
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

/// Layout-conscious random DLN (after Koibuchi et al., HPCA 2013 — the
/// paper's ref. \[11\]): like [`DlnRandom`] but every random link must span
/// at most `max_len` ring positions, modeling shortcut randomization under
/// a cable-length budget. As the paper observes, the length cap costs hop
/// count in low-radix networks — the trade-off the `layout_conscious`
/// experiment sweeps.
#[derive(Debug, Clone)]
pub struct DlnRandomCapped {
    x: u32,
    y: u32,
    max_len: usize,
    seed: u64,
    graph: Graph,
}

impl DlnRandomCapped {
    /// Build DLN-x-y with ring-length-capped random links. Requires
    /// `max_len >= 2` (below that no non-ring link is possible).
    pub fn new(n: usize, x: u32, y: u32, max_len: usize, seed: u64) -> Result<Self> {
        if max_len < 2 {
            return Err(TopologyError::InvalidParameter {
                name: "max_len",
                constraint: "max_len >= 2".into(),
                value: max_len.to_string(),
            });
        }
        let base = Dln::new(n, x)?;
        let mut graph = base.into_graph();
        let mut rng = SmallRng::seed_from_u64(seed);

        // Greedy capped matching per round: shuffle nodes; each unmatched
        // node pairs with the nearest-by-shuffle unmatched node within the
        // cap. Some nodes may stay unmatched in a round (expected only for
        // tiny caps), so realized degree is 2 + at-most-y.
        for _round in 0..y {
            let mut order: Vec<NodeId> = (0..n).collect();
            order.shuffle(&mut rng);
            let mut matched = vec![false; n];
            for i in 0..n {
                let a = order[i];
                if matched[a] {
                    continue;
                }
                for &b in order[i + 1..].iter() {
                    if matched[b] || crate::util::ring_dist(a, b, n) > max_len {
                        continue;
                    }
                    if graph.has_edge(a, b) {
                        continue;
                    }
                    graph.add_edge(a, b, LinkKind::Random);
                    matched[a] = true;
                    matched[b] = true;
                    break;
                }
            }
        }
        Ok(DlnRandomCapped {
            x,
            y,
            max_len,
            seed,
            graph,
        })
    }

    /// Base degree parameter.
    #[inline]
    pub fn x(&self) -> u32 {
        self.x
    }

    /// Random links requested per node.
    #[inline]
    pub fn y(&self) -> u32 {
        self.y
    }

    /// Ring-length cap on random links.
    #[inline]
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// RNG seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dln_2_is_a_ring() {
        let d = Dln::new(16, 2).unwrap();
        assert_eq!(d.graph().edge_count(), 16);
        for v in 0..16 {
            assert_eq!(d.graph().degree(v), 2);
        }
    }

    #[test]
    fn dln_x_degree() {
        // DLN-4 on 64: ring + jumps of 32 and 16. The paper counts DLN-x as
        // "degree x" by out-links; physically the undirected jump-16
        // shortcut contributes an in-link too, so each node sees
        // 2 (ring) + 1 (paired jump n/2) + 2 (jump n/4, out + in) = 5.
        let d = Dln::new(64, 4).unwrap();
        let g = d.graph();
        // jump 32: 32 distinct edges (i, i+32); jump 16: 64 edges.
        assert_eq!(g.edge_count(), 64 + 32 + 64);
        for v in 0..64 {
            assert_eq!(g.degree(v), 5, "v={v}");
        }
        assert!(g.is_connected());
    }

    #[test]
    fn dln_log_n_diameter_is_logarithmic() {
        // DLN-log n has diameter O(log n); sanity-check via BFS at n = 256.
        let n = 256usize;
        let d = Dln::new(n, 8).unwrap();
        let g = d.graph();
        // BFS from node 0
        let mut dist = vec![usize::MAX; n];
        let mut q = std::collections::VecDeque::new();
        dist[0] = 0;
        q.push_back(0);
        while let Some(v) = q.pop_front() {
            for (u, _) in g.neighbors(v) {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    q.push_back(u);
                }
            }
        }
        let ecc = dist.iter().max().copied().unwrap();
        assert!(ecc <= 2 * 8, "eccentricity {ecc} not logarithmic");
    }

    #[test]
    fn dln_2_2_exact_degree_4() {
        let d = DlnRandom::new(64, 2, 2, 42).unwrap();
        let g = d.graph();
        for v in 0..64 {
            assert_eq!(g.degree(v), 4, "v={v}");
        }
        assert!(g.is_connected());
    }

    #[test]
    fn dln_2_2_reproducible_by_seed() {
        let a = DlnRandom::new(128, 2, 2, 7).unwrap();
        let b = DlnRandom::new(128, 2, 2, 7).unwrap();
        let c = DlnRandom::new(128, 2, 2, 8).unwrap();
        assert_eq!(a.graph().edges(), b.graph().edges());
        assert_ne!(a.graph().edges(), c.graph().edges());
    }

    #[test]
    fn random_link_length_near_n_over_3() {
        // Theorem 2b cites avg random shortcut length n/3 for DLN-2-2 on a
        // ring; uniform matchings give expected ring distance ~ n/4 on the
        // ring metric (paper's n/3 is on the line metric); accept a loose
        // band around n/4 here.
        let n = 2048usize;
        let d = DlnRandom::new(n, 2, 2, 3).unwrap();
        let avg = d.avg_random_link_ring_length();
        assert!(
            avg > n as f64 * 0.2 && avg < n as f64 * 0.3,
            "avg random link length {avg} out of expected band"
        );
    }

    #[test]
    fn capped_links_respect_cap() {
        let n = 256;
        let cap = 20;
        let d = DlnRandomCapped::new(n, 2, 2, cap, 11).unwrap();
        for e in d.graph().edges() {
            if e.kind == LinkKind::Random {
                assert!(
                    crate::util::ring_dist(e.a, e.b, n) <= cap,
                    "link {}-{} exceeds cap",
                    e.a,
                    e.b
                );
            }
        }
        assert!(d.graph().is_connected());
        // most nodes should still get their 2 random links
        assert!(
            d.graph().avg_degree() > 3.5,
            "avg {}",
            d.graph().avg_degree()
        );
    }

    #[test]
    fn uncapped_equivalent_when_cap_is_huge() {
        // cap >= n/2 imposes no constraint; degree should reach ~4.
        let d = DlnRandomCapped::new(128, 2, 2, 64, 3).unwrap();
        assert!(d.graph().avg_degree() > 3.9);
    }

    #[test]
    fn capped_aspl_degrades_as_cap_shrinks() {
        // The HPCA'13 observation: tighter caps -> longer paths.
        fn aspl(g: &Graph) -> f64 {
            let n = g.node_count();
            let mut sum = 0u64;
            let mut cnt = 0u64;
            for s in 0..n {
                let mut dist = vec![usize::MAX; n];
                let mut q = std::collections::VecDeque::new();
                dist[s] = 0;
                q.push_back(s);
                while let Some(v) = q.pop_front() {
                    for u in g.neighbor_ids(v) {
                        if dist[u] == usize::MAX {
                            dist[u] = dist[v] + 1;
                            q.push_back(u);
                        }
                    }
                }
                for (t, &d) in dist.iter().enumerate() {
                    if t != s {
                        sum += d as u64;
                        cnt += 1;
                    }
                }
            }
            sum as f64 / cnt as f64
        }
        let tight = DlnRandomCapped::new(256, 2, 2, 8, 5).unwrap();
        let loose = DlnRandomCapped::new(256, 2, 2, 128, 5).unwrap();
        assert!(aspl(tight.graph()) > aspl(loose.graph()));
    }

    #[test]
    fn capped_rejects_tiny_cap() {
        assert!(DlnRandomCapped::new(64, 2, 2, 1, 0).is_err());
    }

    #[test]
    fn odd_n_tolerated() {
        let d = DlnRandom::new(65, 2, 2, 9).unwrap();
        let g = d.graph();
        assert!(g.is_connected());
        // every node has degree >= 2 (ring) and at most 2 + y
        assert!(g.min_degree() >= 2);
        assert!(g.max_degree() <= 4);
    }
}
