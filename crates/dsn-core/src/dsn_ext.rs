//! Extensions of the basic DSN topology (Section V of the paper):
//!
//! * [`DsnE`] — DSN-E, the deadlock-free variant that adds physical *Up*
//!   links (one per node, parallel to the ring link toward the predecessor
//!   within the same super node) and *2p Extra* links near node 0
//!   (Section V.A / Theorem 3). The sibling DSN-V realizes the same thing
//!   with virtual channels instead of extra links and lives in the routing
//!   crate, since VCs are a routing-resource concept.
//! * [`DsnD`] — DSN-D-x, which drops the unhelpful shortest `log p`
//!   shortcuts (base `x = p - ceil(log2 p)`) and instead adds `x` short
//!   *Skip* links per super node at stride `q = ceil(p / x)`, shortening the
//!   PRE-WORK/FINISH local walks (Section V.B).
//! * [`FlexibleDsn`] — super nodes of flexible size: a convenient base DSN
//!   over *major* nodes plus *minor* nodes (fractional IDs in the paper)
//!   that carry no shortcuts, supporting arbitrary `n` and node addition
//!   (Section V.C).

use crate::dsn::Dsn;
use crate::error::{Result, TopologyError};
use crate::graph::{Graph, LinkKind, NodeId};
use crate::util::{ceil_log2, div_ceil};

/// DSN-E: basic DSN-(p-1) plus Up links and 2p Extra links (Section V.A).
#[derive(Debug, Clone)]
pub struct DsnE {
    base: Dsn,
    graph: Graph,
    up_edges: usize,
    extra_edges: usize,
}

impl DsnE {
    /// Build DSN-E on `n` nodes. The shortcut parameter is fixed to
    /// `x = p - 1` as required by the deadlock-freedom construction.
    ///
    /// Requires `n >= 10`: below that the 2p Extra links wrap most of the
    /// ring and, stacked on the Up and Ring lanes, drive some node's
    /// multigraph degree to `n` or beyond — the construction only makes
    /// sense when the extra lanes near node 0 are a local feature.
    pub fn new(n: usize) -> Result<Self> {
        if n < 10 {
            return Err(TopologyError::UnsupportedSize {
                n,
                requirement: "n >= 10 (Up/Extra lanes saturate smaller rings)".into(),
            });
        }
        let p = ceil_log2(n.max(2));
        let base = Dsn::new(n, p.saturating_sub(1).max(1))?;
        let p = base.p();
        let mut graph = base.graph().clone();

        // Up links: a dedicated physical link from each node of level >= 2
        // to its predecessor (same super node). These are parallel to ring
        // links on purpose: PRE-WORK traffic uses them exclusively, so the
        // CDG group of Up channels stays acyclic.
        let mut up_edges = 0usize;
        for i in 0..n {
            if crate::dsn::level_of(i, p) >= 2 {
                let pred = (i + n - 1) % n;
                graph.add_edge(pred, i, LinkKind::Up);
                up_edges += 1;
            }
        }

        // Extra links: (i, i-1) for i = 1..=2p — a second lane over the
        // first 2p ring positions that FINISH uses to break the global ring
        // cycle (Theorem 3).
        let span = (2 * p as usize).min(n.saturating_sub(1));
        let mut extra_edges = 0usize;
        for i in 1..=span {
            graph.add_edge(i - 1, i, LinkKind::Extra);
            extra_edges += 1;
        }

        Ok(DsnE {
            base,
            graph,
            up_edges,
            extra_edges,
        })
    }

    /// The underlying basic DSN (levels, shortcut pointers).
    #[inline]
    pub fn base(&self) -> &Dsn {
        &self.base
    }

    /// Number of switches.
    #[inline]
    pub fn n(&self) -> usize {
        self.base.n()
    }

    /// Number of Up links added.
    #[inline]
    pub fn up_edge_count(&self) -> usize {
        self.up_edges
    }

    /// Number of Extra links added.
    #[inline]
    pub fn extra_edge_count(&self) -> usize {
        self.extra_edges
    }

    /// The physical multigraph including Up and Extra links.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

/// DSN-D-x: base DSN with `x_base = p - ceil(log2 p)` plus `x` Skip links
/// per super node at stride `q = ceil(p / x)` (Section V.B).
///
/// The paper reports that DSN-D-2 reduces the diameter to about `7/4 p`
/// (from `2.5 p + r`) and the routing diameter to about `2 p`.
#[derive(Debug, Clone)]
pub struct DsnD {
    base: Dsn,
    x: u32,
    q: usize,
    graph: Graph,
    skip_edges: usize,
}

impl DsnD {
    /// Build DSN-D-x on `n` nodes. Requires `1 <= x <= p` and `n >= 8`.
    pub fn new(n: usize, x: u32) -> Result<Self> {
        if n < 8 {
            return Err(TopologyError::UnsupportedSize {
                n,
                requirement: "n >= 8".into(),
            });
        }
        let p = ceil_log2(n);
        if x < 1 || x > p {
            return Err(TopologyError::InvalidParameter {
                name: "x",
                constraint: format!("1 <= x <= p (p = {p})"),
                value: x.to_string(),
            });
        }
        let x_base = (p - ceil_log2(p as usize)).max(1);
        let base = Dsn::new(n, x_base)?;
        let mut graph = base.graph().clone();

        // Skip links at stride q: (iq, (i+1)q) for i = 1..=w-? and the
        // closing link back to 0, exactly as Construction DSN-D-x states.
        let q = div_ceil(p as usize, x as usize).max(2);
        let w = div_ceil(n, q).saturating_sub(1);
        let mut skip_edges = 0usize;
        for i in 1..=w {
            let a = (i * q) % n;
            let b = ((i + 1) * q) % n;
            if a != b
                && graph
                    .add_edge_dedup(a.min(b), a.max(b), LinkKind::Skip)
                    .is_some()
            {
                skip_edges += 1;
            }
        }
        let closing = ((w + 1) * q) % n;
        if closing != 0 && graph.add_edge_dedup(0, closing, LinkKind::Skip).is_some() {
            skip_edges += 1;
        }

        Ok(DsnD {
            base,
            x,
            q,
            graph,
            skip_edges,
        })
    }

    /// The underlying basic DSN (with the reduced shortcut set).
    #[inline]
    pub fn base(&self) -> &Dsn {
        &self.base
    }

    /// Skip links per super node (the `x` of DSN-D-x).
    #[inline]
    pub fn x(&self) -> u32 {
        self.x
    }

    /// Skip-link stride `q = ceil(p / x)`.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of Skip links actually added.
    #[inline]
    pub fn skip_edge_count(&self) -> usize {
        self.skip_edges
    }

    /// Number of switches.
    #[inline]
    pub fn n(&self) -> usize {
        self.base.n()
    }

    /// The physical graph including Skip links.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

/// Flexible-size DSN (Section V.C): a base DSN over *major* nodes plus
/// *minor* nodes inserted after chosen majors. Minors own no shortcuts; the
/// paper gives them fractional IDs (e.g. 10½) — here every physical node
/// gets a dense id `0..n` and we track the major/minor structure.
#[derive(Debug, Clone)]
pub struct FlexibleDsn {
    /// The logical base DSN over majors (defines levels and shortcuts).
    base: Dsn,
    graph: Graph,
    /// `major_of[phys]` = logical major id, `None` for minor nodes.
    major_of: Vec<Option<usize>>,
    /// `phys_of[major]` = physical id of that major.
    phys_of: Vec<NodeId>,
}

impl FlexibleDsn {
    /// Build a flexible DSN from `base_n` majors (should be a multiple of
    /// `p` for a clean base; this is checked) and minors inserted after the
    /// given major ids (duplicates allowed: two minors after major 10 are
    /// expressed as `[10, 10]`).
    pub fn new(base_n: usize, x: u32, minor_after: &[usize]) -> Result<Self> {
        let base = Dsn::new(base_n, x)?;
        if base.r() != 0 {
            return Err(TopologyError::InvalidParameter {
                name: "base_n",
                constraint: format!("a multiple of p = {}", base.p()),
                value: base_n.to_string(),
            });
        }
        for &m in minor_after {
            if m >= base_n {
                return Err(TopologyError::InvalidParameter {
                    name: "minor_after",
                    constraint: format!("major ids < base_n = {base_n}"),
                    value: m.to_string(),
                });
            }
        }
        let mut after_counts = vec![0usize; base_n];
        for &m in minor_after {
            after_counts[m] += 1;
        }

        let n = base_n + minor_after.len();
        let mut major_of = Vec::with_capacity(n);
        let mut phys_of = Vec::with_capacity(base_n);
        for (major, &extra) in after_counts.iter().enumerate() {
            phys_of.push(major_of.len());
            major_of.push(Some(major));
            for _ in 0..extra {
                major_of.push(None);
            }
        }
        debug_assert_eq!(major_of.len(), n);

        let mut graph = Graph::new(n);
        for i in 0..n {
            let j = (i + 1) % n;
            graph.add_edge(i.min(j), i.max(j), LinkKind::Ring);
        }
        for major in 0..base_n {
            if let Some(target) = base.shortcut(major) {
                let a = phys_of[major];
                let b = phys_of[target];
                graph.add_edge_dedup(
                    a.min(b),
                    a.max(b),
                    LinkKind::Shortcut {
                        level: base.level(major),
                    },
                );
            }
        }

        Ok(FlexibleDsn {
            base,
            graph,
            major_of,
            phys_of,
        })
    }

    /// The logical base DSN over the majors.
    #[inline]
    pub fn base(&self) -> &Dsn {
        &self.base
    }

    /// Total physical node count (majors + minors).
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// Whether physical node `v` is a major (owns levels/shortcuts).
    #[inline]
    pub fn is_major(&self, v: NodeId) -> bool {
        self.major_of[v].is_some()
    }

    /// Logical major id of physical node `v`, if it is a major.
    #[inline]
    pub fn major_of(&self, v: NodeId) -> Option<usize> {
        self.major_of[v]
    }

    /// Physical id of logical major `m`.
    #[inline]
    pub fn phys_of(&self, m: usize) -> NodeId {
        self.phys_of[m]
    }

    /// The nearest major at or counter-clockwise of physical node `v`
    /// (the paper routes to a minor via "the major node just before it").
    pub fn major_before(&self, v: NodeId) -> NodeId {
        let n = self.n();
        let mut u = v;
        loop {
            if self.major_of[u].is_some() {
                return u;
            }
            u = (u + n - 1) % n;
            debug_assert_ne!(u, v, "no major on the ring");
        }
    }

    /// The physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsn_e_adds_up_and_extra() {
        let e = DsnE::new(64).unwrap(); // p = 6
        assert_eq!(e.base().x(), 5);
        // Up links: one per node of level >= 2. n = 64, p = 6 -> levels
        // cycle 1..6 with r = 4; level-1 nodes are ids ≡ 0 mod 6 -> 11 of
        // them; Up links = 64 - 11 = 53.
        assert_eq!(e.up_edge_count(), 53);
        assert_eq!(e.extra_edge_count(), 12);
        assert!(e.graph().is_connected());
        // Parallel edges exist: ring + up between consecutive ids.
        let kinds = e.graph().edge_kind_counts();
        assert!(kinds.contains(&(LinkKind::Up, 53)));
        assert!(kinds.contains(&(LinkKind::Extra, 12)));
    }

    #[test]
    fn dsn_e_degree_stays_small() {
        let e = DsnE::new(256).unwrap();
        // basic DSN max degree 5, plus <= 2 up links (to pred and from succ)
        // plus <= 2 extra links -> hard cap 9; typical much lower.
        assert!(e.graph().max_degree() <= 9);
        let avg = e.graph().avg_degree();
        assert!(avg < 6.5, "avg degree {avg}");
    }

    #[test]
    fn dsn_d_skip_links() {
        let d = DsnD::new(1024, 2).unwrap(); // p = 10, q = 5
        assert_eq!(d.q(), 5);
        assert!(d.skip_edge_count() > 0);
        assert!(d.graph().is_connected());
        // Base shortcut set is reduced: x_base = p - ceil(log2 p) = 10-4 = 6.
        assert_eq!(d.base().x(), 6);
    }

    #[test]
    fn dsn_d_reduces_diameter_vs_base() {
        // BFS diameters: DSN-D should be no worse than its own base.
        fn diameter(g: &Graph) -> usize {
            let n = g.node_count();
            let mut best = 0usize;
            for s in 0..n {
                let mut dist = vec![usize::MAX; n];
                let mut q = std::collections::VecDeque::new();
                dist[s] = 0;
                q.push_back(s);
                while let Some(v) = q.pop_front() {
                    for (u, _) in g.neighbors(v) {
                        if dist[u] == usize::MAX {
                            dist[u] = dist[v] + 1;
                            q.push_back(u);
                        }
                    }
                }
                best = best.max(dist.iter().copied().max().unwrap());
            }
            best
        }
        let d = DsnD::new(256, 2).unwrap();
        let dd = diameter(d.graph());
        let bd = diameter(d.base().graph());
        assert!(dd <= bd, "skip links must not hurt: {dd} > {bd}");
    }

    #[test]
    fn flexible_matches_paper_example() {
        // Section V.C: n = 1024 as DSN-10-1020 plus 4 minors after majors
        // 10, 20, 30, 40 (paper writes 10½, 20½, 30½, 40½).
        let f = FlexibleDsn::new(1020, 9, &[10, 20, 30, 40]).unwrap();
        assert_eq!(f.n(), 1024);
        assert!(f.graph().is_connected());
        // minors: physical position of major 10 is 10, so phys 11 is minor.
        assert!(f.is_major(10));
        assert!(!f.is_major(11));
        assert_eq!(f.major_of(11), None);
        assert_eq!(f.major_of(12), Some(11));
        assert_eq!(f.major_before(11), 10);
        assert_eq!(f.major_before(12), 12);
    }

    #[test]
    fn flexible_minor_degree_is_2() {
        let f = FlexibleDsn::new(60, 5, &[5, 5, 30]).unwrap();
        for v in 0..f.n() {
            if !f.is_major(v) {
                assert_eq!(f.graph().degree(v), 2, "minor {v} must only ring-link");
            }
        }
    }

    #[test]
    fn flexible_rejects_bad_params() {
        assert!(FlexibleDsn::new(1022, 9, &[]).is_err()); // not multiple of p
        assert!(FlexibleDsn::new(1020, 9, &[2000]).is_err());
    }

    #[test]
    fn dsn_d_rejects_bad_params() {
        assert!(DsnD::new(4, 1).is_err());
        assert!(DsnD::new(1024, 0).is_err());
        assert!(DsnD::new(1024, 11).is_err());
    }
}
