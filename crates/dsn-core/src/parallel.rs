//! Shared parallelism configuration for the analysis and simulation crates.
//!
//! Every parallel kernel in this workspace (`dsn_route::routing_stats`,
//! `dsn_metrics::path_stats`, `dsn_sim::sweep`) accepts a [`Parallelism`]
//! and produces **bit-identical results regardless of the worker count**,
//! because each kernel reduces per-item integer partials in index order
//! (see `vendor/rayon` for the determinism contract). The config therefore
//! only chooses *how fast* an answer arrives, never *which* answer.
//!
//! The figure binaries in `dsn-bench` parse `--serial` / `--threads N`
//! into a `Parallelism` via [`Parallelism::from_args`] and pass it down;
//! the `DSN_THREADS` environment variable supplies a default.

use std::fmt;

/// Worker-count policy for the parallel analysis kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Parallelism {
    /// Requested worker count; 0 = automatic (rayon's resolution order:
    /// global pool override, then `RAYON_NUM_THREADS`, then the number of
    /// available cores).
    threads: usize,
    /// Force the plain sequential code path (no worker threads at all).
    serial: bool,
}

impl Parallelism {
    /// Automatic: let the rayon pool decide the worker count.
    pub fn auto() -> Self {
        Parallelism {
            threads: 0,
            serial: false,
        }
    }

    /// Plain sequential execution — no worker threads, the exact serial
    /// loop the parallel kernels are tested against.
    pub fn serial() -> Self {
        Parallelism {
            threads: 0,
            serial: true,
        }
    }

    /// Exactly `n` workers (`0` means automatic, `1` is equivalent to
    /// [`Parallelism::serial`] in results and nearly so in mechanism).
    pub fn threads(n: usize) -> Self {
        Parallelism {
            threads: n,
            serial: false,
        }
    }

    /// True when kernels should take their sequential code path.
    pub fn is_serial(&self) -> bool {
        self.serial
    }

    /// The worker count this config resolves to right now.
    pub fn effective_threads(&self) -> usize {
        if self.serial {
            1
        } else if self.threads > 0 {
            self.threads
        } else {
            rayon::current_num_threads()
        }
    }

    /// Default from the environment: `DSN_THREADS=N` requests `N` workers
    /// (`0` or unset = automatic, `1` = serial).
    pub fn from_env() -> Self {
        match std::env::var("DSN_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) | Err(_) => Parallelism::auto(),
                Ok(1) => Parallelism::serial(),
                Ok(n) => Parallelism::threads(n),
            },
            Err(_) => Parallelism::auto(),
        }
    }

    /// Parse `--serial` and `--threads N` / `--threads=N` out of a
    /// command-line argument stream, starting from the [`from_env`]
    /// default. Returns the config plus the arguments it did not consume,
    /// so binaries keep their own flags.
    ///
    /// [`from_env`]: Parallelism::from_env
    pub fn from_args(args: impl IntoIterator<Item = String>) -> (Self, Vec<String>) {
        let mut par = Parallelism::from_env();
        let mut rest = Vec::new();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            if a == "--serial" {
                par = Parallelism::serial();
            } else if a == "--threads" {
                match args.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(0) => par = Parallelism::auto(),
                    Some(1) => par = Parallelism::serial(),
                    Some(n) => par = Parallelism::threads(n),
                    None => rest.push(a),
                }
            } else if let Some(v) = a.strip_prefix("--threads=") {
                match v.parse::<usize>() {
                    Ok(0) => par = Parallelism::auto(),
                    Ok(1) => par = Parallelism::serial(),
                    Ok(n) => par = Parallelism::threads(n),
                    Err(_) => rest.push(a),
                }
            } else {
                rest.push(a);
            }
        }
        (par, rest)
    }

    /// Install this config as the global rayon worker count, so code that
    /// calls the parameterless kernels (`routing_stats`, `path_stats`,
    /// `load_sweep`, …) inherits it too.
    pub fn install(&self) {
        let n = if self.serial { 1 } else { self.threads };
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("installing the global worker count cannot fail");
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.serial {
            write!(f, "serial")
        } else if self.threads > 0 {
            write!(f, "{} threads", self.threads)
        } else {
            write!(f, "auto ({} workers)", rayon::current_num_threads())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_accessors() {
        assert!(!Parallelism::auto().is_serial());
        assert!(Parallelism::serial().is_serial());
        assert!(!Parallelism::threads(4).is_serial());
        assert_eq!(Parallelism::serial().effective_threads(), 1);
        assert_eq!(Parallelism::threads(4).effective_threads(), 4);
        assert!(Parallelism::auto().effective_threads() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::auto());
    }

    #[test]
    fn arg_parsing_consumes_only_its_flags() {
        let (par, rest) =
            Parallelism::from_args(["--quick", "--threads", "3", "--verbose"].map(String::from));
        assert_eq!(par, Parallelism::threads(3));
        assert_eq!(rest, vec!["--quick".to_string(), "--verbose".to_string()]);

        let (par, rest) = Parallelism::from_args(["--serial"].map(String::from));
        assert!(par.is_serial());
        assert!(rest.is_empty());

        let (par, _) = Parallelism::from_args(["--threads=2"].map(String::from));
        assert_eq!(par, Parallelism::threads(2));

        let (par, _) = Parallelism::from_args(["--threads=1"].map(String::from));
        assert!(par.is_serial());

        let (par, rest) = Parallelism::from_args(["--threads"].map(String::from));
        assert_eq!(par, Parallelism::from_env());
        assert_eq!(rest, vec!["--threads".to_string()]);
    }

    #[test]
    fn display_names_the_mode() {
        assert_eq!(Parallelism::serial().to_string(), "serial");
        assert_eq!(Parallelism::threads(2).to_string(), "2 threads");
        assert!(Parallelism::auto().to_string().starts_with("auto"));
    }
}
