//! (n, k)-star graphs — Akers/Krishnamurthy/Harel's "attractive alternative
//! to the n-cube" cited in the paper's related work (ICPP 1987).
//!
//! Vertices are the `n! / (n-k)!` arrangements of `k` distinct symbols from
//! `{1..n}`. Vertex `u` is adjacent to:
//! * the arrangement obtained by swapping position 1 with position `i`
//!   (`i = 2..k`) — *swap* edges;
//! * the arrangement obtained by replacing the first symbol with any symbol
//!   not present in `u` — *unused-symbol* edges.
//!
//! Every vertex has degree exactly `n - 1`. `S(n, n-1)` is the classic star
//! graph.

use crate::error::{Result, TopologyError};
use crate::graph::{Graph, LinkKind};
use std::collections::HashMap;

/// The (n, k)-star graph.
#[derive(Debug, Clone)]
pub struct StarGraph {
    sym: usize,
    k: usize,
    graph: Graph,
    /// Vertex id -> arrangement.
    arrangements: Vec<Vec<u8>>,
}

impl StarGraph {
    /// Build S(n, k). Requires `2 <= k < n <= 12` and at most `2^22`
    /// vertices.
    pub fn new(n: usize, k: usize) -> Result<Self> {
        if n > 12 || k < 2 || k >= n {
            return Err(TopologyError::InvalidParameter {
                name: "(n, k)",
                constraint: "2 <= k < n <= 12".into(),
                value: format!("({n}, {k})"),
            });
        }
        let count: usize = ((n - k + 1)..=n).product();
        if count > 1 << 22 {
            return Err(TopologyError::UnsupportedSize {
                n: count,
                requirement: "n!/(n-k)! <= 2^22".into(),
            });
        }

        // Enumerate arrangements in lexicographic order.
        let mut arrangements = Vec::with_capacity(count);
        let mut cur: Vec<u8> = Vec::with_capacity(k);
        let mut used = vec![false; n + 1];
        fn rec(n: usize, k: usize, cur: &mut Vec<u8>, used: &mut [bool], out: &mut Vec<Vec<u8>>) {
            if cur.len() == k {
                out.push(cur.clone());
                return;
            }
            for s in 1..=n {
                if !used[s] {
                    used[s] = true;
                    cur.push(s as u8);
                    rec(n, k, cur, used, out);
                    cur.pop();
                    used[s] = false;
                }
            }
        }
        rec(n, k, &mut cur, &mut used, &mut arrangements);
        debug_assert_eq!(arrangements.len(), count);

        let index: HashMap<Vec<u8>, usize> = arrangements
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, a)| (a, i))
            .collect();

        let mut graph = Graph::new(count);
        for (v, arr) in arrangements.iter().enumerate() {
            // swap edges
            for i in 1..k {
                let mut next = arr.clone();
                next.swap(0, i);
                let u = index[&next];
                if v < u {
                    graph.add_edge(v, u, LinkKind::Shuffle);
                }
            }
            // unused-symbol edges
            let present: Vec<bool> = {
                let mut p = vec![false; n + 1];
                for &s in arr {
                    p[s as usize] = true;
                }
                p
            };
            #[allow(clippy::needless_range_loop)] // s is a symbol, 1-based
            for s in 1..=n {
                if !present[s] {
                    let mut next = arr.clone();
                    next[0] = s as u8;
                    let u = index[&next];
                    if v < u {
                        graph.add_edge(v, u, LinkKind::Random);
                    }
                }
            }
        }

        Ok(StarGraph {
            sym: n,
            k,
            graph,
            arrangements,
        })
    }

    /// Symbol-set size `n` (degree is `n - 1`).
    #[inline]
    pub fn symbols(&self) -> usize {
        self.sym
    }

    /// Arrangement length `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices, `n! / (n-k)!`.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The arrangement labeling vertex `v`.
    #[inline]
    pub fn arrangement(&self, v: usize) -> &[u8] {
        &self.arrangements[v]
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s43_shape() {
        // S(4,3): 4!/1! = 24 vertices, degree 3.
        let s = StarGraph::new(4, 3).unwrap();
        assert_eq!(s.n(), 24);
        for v in 0..24 {
            assert_eq!(s.graph().degree(v), 3, "v={v}");
        }
        assert!(s.graph().is_connected());
    }

    #[test]
    fn snk_degree_is_n_minus_1() {
        for (n, k) in [(5usize, 2usize), (5, 3), (6, 3)] {
            let s = StarGraph::new(n, k).unwrap();
            for v in 0..s.n() {
                assert_eq!(s.graph().degree(v), n - 1, "S({n},{k}) v={v}");
            }
            assert!(s.graph().is_connected());
        }
    }

    #[test]
    fn arrangements_are_distinct_symbols() {
        let s = StarGraph::new(6, 3).unwrap();
        for v in 0..s.n() {
            let a = s.arrangement(v);
            assert_eq!(a.len(), 3);
            let mut sorted = a.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicate symbol in {a:?}");
        }
    }

    #[test]
    fn paper_scale_instance() {
        // Near the paper's ~3k examples: S(7,4) = 7!/3! = 840;
        // S(8,4) = 8!/4! = 1680.
        let s = StarGraph::new(8, 4).unwrap();
        assert_eq!(s.n(), 1680);
        assert_eq!(s.graph().max_degree(), 7);
    }

    #[test]
    fn invalid_rejected() {
        assert!(StarGraph::new(4, 4).is_err());
        assert!(StarGraph::new(13, 3).is_err());
        assert!(StarGraph::new(4, 1).is_err());
    }
}
