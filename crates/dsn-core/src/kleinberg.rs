//! Kleinberg's small-world lattice (STOC 2000), one of the models that
//! motivated the DSN design (Section II of the paper).
//!
//! A `side x side` base grid is augmented with `q` long-range contacts per
//! node, drawn with probability proportional to `d(u, v)^(-alpha)` where `d`
//! is the lattice (Manhattan) distance. `alpha = 2` is Kleinberg's
//! navigable exponent on a 2-D lattice.

use crate::error::{Result, TopologyError};
use crate::graph::{Graph, LinkKind, NodeId};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Kleinberg small-world grid.
#[derive(Debug, Clone)]
pub struct Kleinberg {
    side: usize,
    q: u32,
    alpha: f64,
    seed: u64,
    graph: Graph,
}

impl Kleinberg {
    /// Build a `side x side` Kleinberg grid with `q` long-range contacts per
    /// node and clustering exponent `alpha` (use `2.0` for the navigable
    /// regime). Long-range links are undirected; duplicates are skipped so
    /// realized degree may occasionally be below `4 + 2q`.
    pub fn new(side: usize, q: u32, alpha: f64, seed: u64) -> Result<Self> {
        if side < 2 {
            return Err(TopologyError::UnsupportedSize {
                n: side,
                requirement: "side >= 2".into(),
            });
        }
        if !(alpha.is_finite() && alpha >= 0.0) {
            return Err(TopologyError::InvalidParameter {
                name: "alpha",
                constraint: "finite and >= 0".into(),
                value: alpha.to_string(),
            });
        }
        let n = side * side;
        let mut graph = Graph::new(n);
        // Base grid links (no wrap; Kleinberg's model is a lattice).
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    graph.add_edge(v, v + 1, LinkKind::Grid);
                }
                if r + 1 < side {
                    graph.add_edge(v, v + side, LinkKind::Grid);
                }
            }
        }

        let mut rng = SmallRng::seed_from_u64(seed);
        let manhattan = |a: NodeId, b: NodeId| -> usize {
            let (ra, ca) = (a / side, a % side);
            let (rb, cb) = (b / side, b % side);
            ra.abs_diff(rb) + ca.abs_diff(cb)
        };

        for u in 0..n {
            // Weights over all other nodes: d^-alpha.
            let weights: Vec<f64> = (0..n)
                .map(|v| {
                    if v == u {
                        0.0
                    } else {
                        (manhattan(u, v) as f64).powf(-alpha)
                    }
                })
                .collect();
            let dist = WeightedIndex::new(&weights).map_err(|e| {
                TopologyError::ConstructionFailed(format!("weighted sampling: {e}"))
            })?;
            for _ in 0..q {
                // Resample when the drawn contact already shares a link with
                // `u` (common under alpha = 2, which prefers lattice
                // neighbors), so nodes realize their q contacts whenever the
                // neighborhood is not saturated.
                const RESAMPLE: usize = 16;
                for _ in 0..RESAMPLE {
                    let v = dist.sample(&mut rng);
                    if graph.add_edge_dedup(u, v, LinkKind::LongRange).is_some() {
                        break;
                    }
                }
            }
        }

        Ok(Kleinberg {
            side,
            q,
            alpha,
            seed,
            graph,
        })
    }

    /// Grid side length.
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Long-range contacts requested per node.
    #[inline]
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Clustering exponent.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// RNG seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of nodes (`side^2`).
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Lattice (Manhattan) distance between two nodes.
    pub fn lattice_distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ra, ca) = (a / self.side, a % self.side);
        let (rb, cb) = (b / self.side, b % self.side);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_grid_structure() {
        let k = Kleinberg::new(4, 0, 2.0, 1).unwrap();
        let g = k.graph();
        assert_eq!(k.n(), 16);
        // 4x4 grid: 2 * 4 * 3 = 24 links
        assert_eq!(g.edge_count(), 24);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 2);
    }

    #[test]
    fn long_range_links_added() {
        let k = Kleinberg::new(8, 1, 2.0, 5).unwrap();
        let long: usize = k
            .graph()
            .edges()
            .iter()
            .filter(|e| e.kind == LinkKind::LongRange)
            .count();
        // 64 draws, some may dedup; expect the vast majority to land.
        assert!(long > 48, "only {long} long-range links realized");
    }

    #[test]
    fn reproducible_by_seed() {
        let a = Kleinberg::new(6, 1, 2.0, 11).unwrap();
        let b = Kleinberg::new(6, 1, 2.0, 11).unwrap();
        assert_eq!(a.graph().edges(), b.graph().edges());
    }

    #[test]
    fn distance_bias_prefers_nearby() {
        // With alpha = 2 most contacts should be short; compare the mean
        // lattice length of long-range links against the uniform expectation
        // (~ 2/3 * side for a side x side grid).
        let side = 16usize;
        let k = Kleinberg::new(side, 1, 2.0, 23).unwrap();
        let lens: Vec<usize> = k
            .graph()
            .edges()
            .iter()
            .filter(|e| e.kind == LinkKind::LongRange)
            .map(|e| k.lattice_distance(e.a, e.b))
            .collect();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        let uniform_mean = 2.0 / 3.0 * side as f64;
        assert!(
            mean < uniform_mean,
            "mean long-range length {mean} not biased below uniform {uniform_mean}"
        );
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Kleinberg::new(1, 1, 2.0, 0).is_err());
        assert!(Kleinberg::new(4, 1, f64::NAN, 0).is_err());
        assert!(Kleinberg::new(4, 1, -1.0, 0).is_err());
    }
}
