//! Kleinberg's small-world lattice (STOC 2000), one of the models that
//! motivated the DSN design (Section II of the paper).
//!
//! A `side x side` base grid is augmented with `q` long-range contacts per
//! node, drawn with probability proportional to `d(u, v)^(-alpha)` where `d`
//! is the lattice (Manhattan) distance. `alpha = 2` is Kleinberg's
//! navigable exponent on a 2-D lattice.

use crate::error::{Result, TopologyError};
use crate::graph::{Graph, LinkKind, NodeId};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Kleinberg small-world grid.
#[derive(Debug, Clone)]
pub struct Kleinberg {
    side: usize,
    q: u32,
    alpha: f64,
    seed: u64,
    graph: Graph,
}

impl Kleinberg {
    /// Build a `side x side` Kleinberg grid with `q` long-range contacts per
    /// node and clustering exponent `alpha` (use `2.0` for the navigable
    /// regime). Long-range links are undirected; duplicates are skipped so
    /// realized degree may occasionally be below `4 + 2q`.
    pub fn new(side: usize, q: u32, alpha: f64, seed: u64) -> Result<Self> {
        if side < 2 {
            return Err(TopologyError::UnsupportedSize {
                n: side,
                requirement: "side >= 2".into(),
            });
        }
        if !(alpha.is_finite() && alpha >= 0.0) {
            return Err(TopologyError::InvalidParameter {
                name: "alpha",
                constraint: "finite and >= 0".into(),
                value: alpha.to_string(),
            });
        }
        let n = side * side;
        let mut graph = Graph::new(n);
        // Base grid links (no wrap; Kleinberg's model is a lattice).
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    graph.add_edge(v, v + 1, LinkKind::Grid);
                }
                if r + 1 < side {
                    graph.add_edge(v, v + side, LinkKind::Grid);
                }
            }
        }

        let mut rng = SmallRng::seed_from_u64(seed);
        let manhattan = |a: NodeId, b: NodeId| -> usize {
            let (ra, ca) = (a / side, a % side);
            let (rb, cb) = (b / side, b % side);
            ra.abs_diff(rb) + ca.abs_diff(cb)
        };

        for u in 0..n {
            // Weights over all other nodes: d^-alpha.
            let weights: Vec<f64> = (0..n)
                .map(|v| {
                    if v == u {
                        0.0
                    } else {
                        (manhattan(u, v) as f64).powf(-alpha)
                    }
                })
                .collect();
            let dist = WeightedIndex::new(&weights).map_err(|e| {
                TopologyError::ConstructionFailed(format!("weighted sampling: {e}"))
            })?;
            for _ in 0..q {
                // Resample when the drawn contact already shares a link with
                // `u` (common under alpha = 2, which prefers lattice
                // neighbors), so nodes realize their q contacts whenever the
                // neighborhood is not saturated.
                const RESAMPLE: usize = 16;
                for _ in 0..RESAMPLE {
                    let v = dist.sample(&mut rng);
                    if graph.add_edge_dedup(u, v, LinkKind::LongRange).is_some() {
                        break;
                    }
                }
            }
        }

        Ok(Kleinberg {
            side,
            q,
            alpha,
            seed,
            graph,
        })
    }

    /// Grid side length.
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Long-range contacts requested per node.
    #[inline]
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Clustering exponent.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// RNG seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of nodes (`side^2`).
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Lattice (Manhattan) distance between two nodes.
    pub fn lattice_distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ra, ca) = (a / self.side, a % self.side);
        let (rb, cb) = (b / self.side, b % self.side);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }
}

/// Kleinberg `d^-alpha` span distribution on a ring of `n` nodes — the
/// 1-D counterpart of the grid sampler above, reused by the
/// shortcut-placement search (`dsn-opt`) both to build ring-Kleinberg
/// baselines and to bias rewiring moves toward a navigable span mix
/// (`alpha = 1` is the navigable exponent on a ring).
///
/// Spans run `1..=n/2` (ring distance); span `d` is weighted by
/// `m(d) * d^-alpha` where `m(d)` is the number of nodes at ring distance
/// `d` (2, except 1 for the antipode on an even ring), so sampling a span
/// and then a uniform side reproduces the per-node Kleinberg law exactly.
#[derive(Debug, Clone)]
pub struct RingSpanDist {
    n: usize,
    alpha: f64,
    dist: WeightedIndex,
}

impl RingSpanDist {
    /// Build the span distribution for a ring of `n >= 4` nodes with
    /// clustering exponent `alpha` (finite, `>= 0`; `1.0` is navigable).
    pub fn new(n: usize, alpha: f64) -> Result<Self> {
        if n < 4 {
            return Err(TopologyError::UnsupportedSize {
                n,
                requirement: "n >= 4 for a ring span distribution".into(),
            });
        }
        if !(alpha.is_finite() && alpha >= 0.0) {
            return Err(TopologyError::InvalidParameter {
                name: "alpha",
                constraint: "finite and >= 0".into(),
                value: alpha.to_string(),
            });
        }
        let max_span = n / 2;
        let weights: Vec<f64> = (1..=max_span)
            .map(|d| {
                let mult = if n.is_multiple_of(2) && d == max_span {
                    1.0
                } else {
                    2.0
                };
                mult * (d as f64).powf(-alpha)
            })
            .collect();
        let dist = WeightedIndex::new(&weights)
            .map_err(|e| TopologyError::ConstructionFailed(format!("weighted sampling: {e}")))?;
        Ok(RingSpanDist { n, alpha, dist })
    }

    /// Ring size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Clustering exponent.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Largest sampleable span, `n / 2`.
    #[inline]
    pub fn max_span(&self) -> usize {
        self.n / 2
    }

    /// Draw a span in `1..=n/2` with probability proportional to
    /// `m(d) * d^-alpha`. Deterministic given the RNG state.
    #[inline]
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        self.dist.sample(rng) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_grid_structure() {
        let k = Kleinberg::new(4, 0, 2.0, 1).unwrap();
        let g = k.graph();
        assert_eq!(k.n(), 16);
        // 4x4 grid: 2 * 4 * 3 = 24 links
        assert_eq!(g.edge_count(), 24);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 2);
    }

    #[test]
    fn long_range_links_added() {
        let k = Kleinberg::new(8, 1, 2.0, 5).unwrap();
        let long: usize = k
            .graph()
            .edges()
            .iter()
            .filter(|e| e.kind == LinkKind::LongRange)
            .count();
        // 64 draws, some may dedup; expect the vast majority to land.
        assert!(long > 48, "only {long} long-range links realized");
    }

    #[test]
    fn reproducible_by_seed() {
        let a = Kleinberg::new(6, 1, 2.0, 11).unwrap();
        let b = Kleinberg::new(6, 1, 2.0, 11).unwrap();
        assert_eq!(a.graph().edges(), b.graph().edges());
    }

    #[test]
    fn distance_bias_prefers_nearby() {
        // With alpha = 2 most contacts should be short; compare the mean
        // lattice length of long-range links against the uniform expectation
        // (~ 2/3 * side for a side x side grid).
        let side = 16usize;
        let k = Kleinberg::new(side, 1, 2.0, 23).unwrap();
        let lens: Vec<usize> = k
            .graph()
            .edges()
            .iter()
            .filter(|e| e.kind == LinkKind::LongRange)
            .map(|e| k.lattice_distance(e.a, e.b))
            .collect();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        let uniform_mean = 2.0 / 3.0 * side as f64;
        assert!(
            mean < uniform_mean,
            "mean long-range length {mean} not biased below uniform {uniform_mean}"
        );
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Kleinberg::new(1, 1, 2.0, 0).is_err());
        assert!(Kleinberg::new(4, 1, f64::NAN, 0).is_err());
        assert!(Kleinberg::new(4, 1, -1.0, 0).is_err());
    }

    #[test]
    fn ring_span_bounds_and_bias() {
        let n = 64;
        let d = RingSpanDist::new(n, 1.0).unwrap();
        assert_eq!(d.max_span(), 32);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0usize;
        let mut short = 0usize;
        let trials = 4000;
        for _ in 0..trials {
            let s = d.sample(&mut rng);
            assert!((1..=32).contains(&s));
            sum += s;
            if s <= 4 {
                short += 1;
            }
        }
        let mean = sum as f64 / trials as f64;
        // Uniform over spans would average ~16.4; alpha=1 pulls well below.
        assert!(mean < 13.0, "mean span {mean} not biased short");
        assert!(short > trials / 4, "only {short} short spans");
    }

    #[test]
    fn ring_span_alpha_zero_is_uniformish() {
        let n = 65; // odd: every span 1..=32 has multiplicity 2
        let d = RingSpanDist::new(n, 0.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = vec![0usize; d.max_span() + 1];
        for _ in 0..32_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        let (min, max) = (
            counts[1..].iter().min().unwrap(),
            counts[1..].iter().max().unwrap(),
        );
        assert!(*min > 0, "some span never sampled");
        assert!(*max < min * 2, "alpha=0 should be near-uniform: {counts:?}");
    }

    #[test]
    fn ring_span_deterministic_and_validated() {
        let d = RingSpanDist::new(128, 1.0).unwrap();
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let xs: Vec<usize> = (0..32).map(|_| d.sample(&mut a)).collect();
        let ys: Vec<usize> = (0..32).map(|_| d.sample(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(RingSpanDist::new(3, 1.0).is_err());
        assert!(RingSpanDist::new(64, f64::NAN).is_err());
        assert!(RingSpanDist::new(64, -0.5).is_err());
    }
}
