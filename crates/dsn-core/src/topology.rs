//! A uniform handle over every topology family, used by the analysis,
//! layout, and benchmark crates to sweep "the same network size across
//! DSN / torus / RANDOM" the way the paper's figures do.

use crate::classic::{CubeConnectedCycles, DeBruijn, Hypercube};
use crate::dln::{Dln, DlnRandom};
use crate::dsn::Dsn;
use crate::dsn_ext::{DsnD, DsnE, FlexibleDsn};
use crate::error::{Result, TopologyError};
use crate::graph::Graph;
use crate::highradix::{Dragonfly, FlattenedButterfly};
use crate::kleinberg::Kleinberg;
use crate::random_regular::RandomRegular;
use crate::ring::Ring;
use crate::torus::Torus;

/// A constructed topology instance: its display name plus physical graph.
#[derive(Debug, Clone)]
pub struct BuiltTopology {
    /// Human-readable name, e.g. `"DSN-9-1024"`.
    pub name: String,
    /// The physical graph.
    pub graph: Graph,
}

/// Parametric description of a topology, serializable to/parsable from a
/// short spec string for the CLI harnesses.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// DSN-x-n (basic).
    Dsn {
        /// Node count.
        n: usize,
        /// Shortcut-set size.
        x: u32,
    },
    /// DSN-E on n nodes.
    DsnE {
        /// Node count.
        n: usize,
    },
    /// DSN-D-x on n nodes.
    DsnD {
        /// Node count.
        n: usize,
        /// Skip links per super node.
        x: u32,
    },
    /// Flexible DSN: base majors + minors after major 0 spacing.
    FlexDsn {
        /// Number of major nodes (multiple of p).
        base_n: usize,
        /// Shortcut-set size.
        x: u32,
        /// Number of evenly spread minor nodes.
        minors: usize,
    },
    /// Plain ring of n nodes.
    Ring {
        /// Node count.
        n: usize,
    },
    /// Most-square 2-D torus on n nodes.
    Torus2D {
        /// Node count.
        n: usize,
    },
    /// Most-cubic 3-D torus on n nodes.
    Torus3D {
        /// Node count.
        n: usize,
    },
    /// DLN-x on n nodes.
    Dln {
        /// Node count.
        n: usize,
        /// Degree parameter.
        x: u32,
    },
    /// DLN-x-y (the paper's RANDOM baseline is DLN-2-2).
    DlnRandom {
        /// Node count.
        n: usize,
        /// Base degree parameter.
        x: u32,
        /// Random links per node.
        y: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Random d-regular graph.
    RandomRegular {
        /// Node count.
        n: usize,
        /// Degree.
        d: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Kleinberg side x side grid with q contacts, exponent alpha.
    Kleinberg {
        /// Grid side.
        side: usize,
        /// Long-range contacts per node.
        q: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Hypercube of the given dimension.
    Hypercube {
        /// Dimension.
        dim: u32,
    },
    /// Cube-connected cycles of the given dimension.
    Ccc {
        /// Dimension.
        dim: u32,
    },
    /// de Bruijn B(base, dim).
    DeBruijn {
        /// Digit base.
        base: usize,
        /// Word length.
        dim: u32,
    },
    /// k-ary n-flat flattened butterfly.
    FlattenedButterfly {
        /// Radix.
        k: usize,
        /// The n of "n-flat".
        nflat: u32,
    },
    /// Balanced dragonfly from (routers per group, global links per router).
    Dragonfly {
        /// Routers per group.
        a: usize,
        /// Global links per router.
        h: usize,
    },
}

impl TopologySpec {
    /// Build the topology this spec describes.
    pub fn build(&self) -> Result<BuiltTopology> {
        let (name, graph) = match *self {
            TopologySpec::Dsn { n, x } => (format!("DSN-{x}-{n}"), Dsn::new(n, x)?.into_graph()),
            TopologySpec::DsnE { n } => (format!("DSN-E-{n}"), DsnE::new(n)?.into_graph()),
            TopologySpec::DsnD { n, x } => {
                (format!("DSN-D-{x}-{n}"), DsnD::new(n, x)?.into_graph())
            }
            TopologySpec::FlexDsn { base_n, x, minors } => {
                let spread: Vec<usize> = (0..minors)
                    .map(|i| (i + 1) * base_n / (minors + 1))
                    .collect();
                (
                    format!("DSN-flex-{x}-{base_n}+{minors}"),
                    FlexibleDsn::new(base_n, x, &spread)?.into_graph(),
                )
            }
            TopologySpec::Ring { n } => (format!("Ring-{n}"), Ring::new(n)?.into_graph()),
            TopologySpec::Torus2D { n } => {
                let t = Torus::square_2d(n)?;
                (
                    format!("Torus-{}x{}", t.radices()[0], t.radices()[1]),
                    t.into_graph(),
                )
            }
            TopologySpec::Torus3D { n } => {
                let t = Torus::cube_3d(n)?;
                (
                    format!(
                        "Torus-{}x{}x{}",
                        t.radices()[0],
                        t.radices()[1],
                        t.radices()[2]
                    ),
                    t.into_graph(),
                )
            }
            TopologySpec::Dln { n, x } => (format!("DLN-{x}-{n}"), Dln::new(n, x)?.into_graph()),
            TopologySpec::DlnRandom { n, x, y, seed } => (
                format!("DLN-{x}-{y}-{n}"),
                DlnRandom::new(n, x, y, seed)?.into_graph(),
            ),
            TopologySpec::RandomRegular { n, d, seed } => (
                format!("Random-{d}-regular-{n}"),
                RandomRegular::new(n, d, seed)?.into_graph(),
            ),
            TopologySpec::Kleinberg { side, q, seed } => (
                format!("Kleinberg-{side}x{side}-q{q}"),
                Kleinberg::new(side, q, 2.0, seed)?.into_graph(),
            ),
            TopologySpec::Hypercube { dim } => (
                format!("Hypercube-{dim}"),
                Hypercube::new(dim)?.into_graph(),
            ),
            TopologySpec::Ccc { dim } => (
                format!("CCC-{dim}"),
                CubeConnectedCycles::new(dim)?.into_graph(),
            ),
            TopologySpec::DeBruijn { base, dim } => (
                format!("DeBruijn-{base}-{dim}"),
                DeBruijn::new(base, dim)?.into_graph(),
            ),
            TopologySpec::FlattenedButterfly { k, nflat } => (
                format!("FlatButterfly-{k}ary{nflat}flat"),
                FlattenedButterfly::new(k, nflat)?.into_graph(),
            ),
            TopologySpec::Dragonfly { a, h } => (
                format!("Dragonfly-a{a}h{h}"),
                Dragonfly::new(a, h)?.into_graph(),
            ),
        };
        Ok(BuiltTopology { name, graph })
    }

    /// Parse a compact spec string, for CLI harnesses. Grammar (fields are
    /// `:`-separated, seeds default to 42):
    ///
    /// * `dsn:<n>[:<x>]` (x defaults to p-1) — basic DSN
    /// * `dsne:<n>`, `dsnd:<n>:<x>`, `flexdsn:<base>:<x>:<minors>`
    /// * `ring:<n>`, `torus2d:<n>`, `torus3d:<n>`
    /// * `dln:<n>:<x>`, `random:<n>[:<seed>]` (DLN-2-2),
    ///   `regular:<n>:<d>[:<seed>]`, `kleinberg:<side>:<q>[:<seed>]`
    /// * `hypercube:<dim>`, `ccc:<dim>`, `debruijn:<base>:<dim>`
    pub fn parse(spec: &str) -> Result<TopologySpec> {
        let parts: Vec<&str> = spec.split(':').collect();
        let usize_at = |i: usize| -> Result<usize> {
            parts.get(i).and_then(|s| s.parse().ok()).ok_or_else(|| {
                TopologyError::InvalidParameter {
                    name: "spec",
                    constraint: "numeric field".into(),
                    value: spec.into(),
                }
            })
        };
        let u32_at = |i: usize| -> Result<u32> { usize_at(i).map(|v| v as u32) };
        let u64_or = |i: usize, default: u64| -> u64 {
            parts.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
        };
        let family = parts
            .first()
            .copied()
            .unwrap_or_default()
            .to_ascii_lowercase();
        Ok(match family.as_str() {
            "dsn" => {
                let n = usize_at(1)?;
                let x = if parts.len() > 2 {
                    u32_at(2)?
                } else {
                    crate::util::ceil_log2(n.max(2)).saturating_sub(1).max(1)
                };
                TopologySpec::Dsn { n, x }
            }
            "dsne" => TopologySpec::DsnE { n: usize_at(1)? },
            "dsnd" => TopologySpec::DsnD { n: usize_at(1)?, x: u32_at(2)? },
            "flexdsn" => TopologySpec::FlexDsn {
                base_n: usize_at(1)?,
                x: u32_at(2)?,
                minors: usize_at(3)?,
            },
            "ring" => TopologySpec::Ring { n: usize_at(1)? },
            "torus2d" => TopologySpec::Torus2D { n: usize_at(1)? },
            "torus3d" => TopologySpec::Torus3D { n: usize_at(1)? },
            "dln" => TopologySpec::Dln { n: usize_at(1)?, x: u32_at(2)? },
            "random" => TopologySpec::DlnRandom {
                n: usize_at(1)?,
                x: 2,
                y: 2,
                seed: u64_or(2, 42),
            },
            "regular" => TopologySpec::RandomRegular {
                n: usize_at(1)?,
                d: u32_at(2)?,
                seed: u64_or(3, 42),
            },
            "kleinberg" => TopologySpec::Kleinberg {
                side: usize_at(1)?,
                q: u32_at(2)?,
                seed: u64_or(3, 42),
            },
            "hypercube" => TopologySpec::Hypercube { dim: u32_at(1)? },
            "ccc" => TopologySpec::Ccc { dim: u32_at(1)? },
            "debruijn" => TopologySpec::DeBruijn {
                base: usize_at(1)?,
                dim: u32_at(2)?,
            },
            "flatbutterfly" | "fb" => TopologySpec::FlattenedButterfly {
                k: usize_at(1)?,
                nflat: u32_at(2)?,
            },
            "dragonfly" | "df" => TopologySpec::Dragonfly {
                a: usize_at(1)?,
                h: usize_at(2)?,
            },
            _ => {
                return Err(TopologyError::InvalidParameter {
                    name: "spec",
                    constraint: "a known family (dsn, dsne, dsnd, flexdsn, ring, torus2d, torus3d, dln, random, regular, kleinberg, hypercube, ccc, debruijn, flatbutterfly, dragonfly)".into(),
                    value: spec.into(),
                })
            }
        })
    }

    /// The three degree-4 counterparts the paper's Figures 7–10 compare at a
    /// given size: basic DSN (x = p-1), most-square 2-D torus, and DLN-2-2
    /// ("RANDOM").
    pub fn paper_trio(n: usize, seed: u64) -> [TopologySpec; 3] {
        let p = crate::util::ceil_log2(n.max(2));
        [
            TopologySpec::Dsn { n, x: p - 1 },
            TopologySpec::Torus2D { n },
            TopologySpec::DlnRandom {
                n,
                x: 2,
                y: 2,
                seed,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_builds() {
        let specs = [
            TopologySpec::Dsn { n: 64, x: 5 },
            TopologySpec::DsnE { n: 64 },
            TopologySpec::DsnD { n: 64, x: 2 },
            TopologySpec::FlexDsn {
                base_n: 60,
                x: 5,
                minors: 4,
            },
            TopologySpec::Ring { n: 64 },
            TopologySpec::Torus2D { n: 64 },
            TopologySpec::Torus3D { n: 64 },
            TopologySpec::Dln { n: 64, x: 4 },
            TopologySpec::DlnRandom {
                n: 64,
                x: 2,
                y: 2,
                seed: 1,
            },
            TopologySpec::RandomRegular {
                n: 64,
                d: 4,
                seed: 1,
            },
            TopologySpec::Kleinberg {
                side: 8,
                q: 1,
                seed: 1,
            },
            TopologySpec::Hypercube { dim: 6 },
            TopologySpec::Ccc { dim: 4 },
            TopologySpec::DeBruijn { base: 2, dim: 6 },
        ];
        for spec in specs {
            let built = spec.build().unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert!(built.graph.is_connected(), "{} disconnected", built.name);
            assert!(!built.name.is_empty());
        }
    }

    #[test]
    fn paper_trio_shapes() {
        let trio = TopologySpec::paper_trio(64, 42);
        let names: Vec<String> = trio.iter().map(|s| s.build().unwrap().name).collect();
        assert_eq!(names[0], "DSN-5-64");
        assert_eq!(names[1], "Torus-8x8");
        assert_eq!(names[2], "DLN-2-2-64");
    }

    #[test]
    fn parse_specs() {
        for (spec, expect_n) in [
            ("dsn:64:5", 64usize),
            ("dsn:64", 64),
            ("dsne:64", 64),
            ("dsnd:64:2", 64),
            ("ring:32", 32),
            ("torus2d:64", 64),
            ("torus3d:64", 64),
            ("dln:64:4", 64),
            ("random:64", 64),
            ("random:64:7", 64),
            ("regular:64:4", 64),
            ("kleinberg:8:1", 64),
            ("hypercube:6", 64),
            ("ccc:4", 64),
            ("debruijn:2:6", 64),
            ("fb:4:3", 16),
            ("flatbutterfly:8:2", 8),
            ("df:4:2", 36),
            ("dragonfly:3:1", 12),
        ] {
            let t = TopologySpec::parse(spec)
                .unwrap_or_else(|e| panic!("{spec}: {e}"))
                .build()
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(t.graph.node_count(), expect_n, "{spec}");
        }
    }

    #[test]
    fn parse_default_x_is_p_minus_1() {
        assert_eq!(
            TopologySpec::parse("dsn:1024").unwrap(),
            TopologySpec::Dsn { n: 1024, x: 9 }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TopologySpec::parse("frobnicate:12").is_err());
        assert!(TopologySpec::parse("dsn").is_err());
        assert!(TopologySpec::parse("dln:64").is_err());
        assert!(TopologySpec::parse("").is_err());
    }

    #[test]
    fn flex_spreads_minors() {
        let spec = TopologySpec::FlexDsn {
            base_n: 1020,
            x: 9,
            minors: 4,
        };
        let b = spec.build().unwrap();
        assert_eq!(b.graph.node_count(), 1024);
    }
}
