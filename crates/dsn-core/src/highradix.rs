//! High-radix topologies: **Flattened Butterfly** (Kim/Dally/Abts, ISCA
//! 2007 — the paper's ref. \[22\], source of its cable cost model) and
//! **Dragonfly** (Kim/Dally/Scott/Abts, ISCA 2008 — ref. \[4\]).
//!
//! The paper positions DSN in the *low-radix* regime and cites these as
//! the high-radix alternatives; having them lets the examples reproduce
//! the low-vs-high-radix trade-off the introduction discusses (fewer hops
//! per packet vs many more, longer cables per switch).

use crate::error::{Result, TopologyError};
use crate::graph::{Graph, LinkKind};

/// k-ary n-flat flattened butterfly: `k^(n-1)` routers; in every dimension
/// the `k` routers that differ only in that dimension form a clique.
/// Router degree is `(k - 1) * (n - 1)`.
#[derive(Debug, Clone)]
pub struct FlattenedButterfly {
    k: usize,
    nflat: u32,
    graph: Graph,
}

impl FlattenedButterfly {
    /// Build a k-ary n-flat. Requires `k >= 2`, `n >= 2`, and at most
    /// `2^22` routers.
    pub fn new(k: usize, n: u32) -> Result<Self> {
        if k < 2 {
            return Err(TopologyError::InvalidParameter {
                name: "k",
                constraint: "k >= 2".into(),
                value: k.to_string(),
            });
        }
        if n < 2 {
            return Err(TopologyError::InvalidParameter {
                name: "n",
                constraint: "n >= 2".into(),
                value: n.to_string(),
            });
        }
        let dims = (n - 1) as usize;
        let routers = k.checked_pow(dims as u32).filter(|&r| r <= 1 << 22).ok_or(
            TopologyError::UnsupportedSize {
                n: 0,
                requirement: "k^(n-1) <= 2^22".into(),
            },
        )?;

        let mut graph = Graph::new(routers);
        // For each dimension, connect all pairs differing only there.
        let mut stride = 1usize;
        for _d in 0..dims {
            for base in 0..routers {
                let digit = (base / stride) % k;
                // Connect to higher digits only (each pair once).
                for other in digit + 1..k {
                    let peer = base + (other - digit) * stride;
                    graph.add_edge(base, peer, LinkKind::Shuffle);
                }
            }
            stride *= k;
        }
        Ok(FlattenedButterfly { k, nflat: n, graph })
    }

    /// Radix parameter `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The `n` of "k-ary n-flat" (dimensions + 1).
    #[inline]
    pub fn nflat(&self) -> u32 {
        self.nflat
    }

    /// Number of routers, `k^(n-1)`.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

/// Canonical (balanced) dragonfly: groups of `a` routers, each group a
/// clique; every router owns `h` global links; `g = a*h + 1` groups, each
/// ordered group pair joined by exactly one global link ("absolute"
/// arrangement). Router degree is `(a - 1) + h`.
#[derive(Debug, Clone)]
pub struct Dragonfly {
    a: usize,
    h: usize,
    groups: usize,
    graph: Graph,
}

impl Dragonfly {
    /// Build a balanced dragonfly from `a` (routers per group) and `h`
    /// (global links per router). Requires `a >= 2`, `h >= 1`, and at most
    /// `2^22` routers.
    pub fn new(a: usize, h: usize) -> Result<Self> {
        if a < 2 {
            return Err(TopologyError::InvalidParameter {
                name: "a",
                constraint: "a >= 2".into(),
                value: a.to_string(),
            });
        }
        if h < 1 {
            return Err(TopologyError::InvalidParameter {
                name: "h",
                constraint: "h >= 1".into(),
                value: h.to_string(),
            });
        }
        let groups = a * h + 1;
        let routers = groups.checked_mul(a).filter(|&r| r <= 1 << 22).ok_or(
            TopologyError::UnsupportedSize {
                n: 0,
                requirement: "(a*h + 1) * a <= 2^22".into(),
            },
        )?;

        let mut graph = Graph::new(routers);
        // Intra-group cliques.
        for g in 0..groups {
            for i in 0..a {
                for j in i + 1..a {
                    graph.add_edge(g * a + i, g * a + j, LinkKind::Cycle);
                }
            }
        }
        // Global links, absolute arrangement: group pair (g1, g2), g1 < g2,
        // is the (g2 - g1 - 1)-th outgoing "slot" of g1 and similar for g2.
        // Each group has a*h outgoing slots; slot s belongs to router s / h.
        for g1 in 0..groups {
            for g2 in g1 + 1..groups {
                let slot1 = g2 - g1 - 1; // 0 .. a*h-1
                let slot2 = groups - 1 - (g2 - g1); // complementary slot at g2
                let r1 = g1 * a + slot1 / h;
                let r2 = g2 * a + slot2 / h;
                graph.add_edge(r1, r2, LinkKind::LongRange);
            }
        }
        Ok(Dragonfly {
            a,
            h,
            groups,
            graph,
        })
    }

    /// Routers per group.
    #[inline]
    pub fn a(&self) -> usize {
        self.a
    }

    /// Global links per router.
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }

    /// Number of groups (`a*h + 1`).
    #[inline]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Total router count.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bfs_ecc(g: &Graph, s: usize) -> usize {
        let mut dist = vec![usize::MAX; g.node_count()];
        let mut q = std::collections::VecDeque::new();
        dist[s] = 0;
        q.push_back(s);
        let mut ecc = 0;
        while let Some(v) = q.pop_front() {
            for u in g.neighbor_ids(v) {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    ecc = ecc.max(dist[u]);
                    q.push_back(u);
                }
            }
        }
        assert!(dist.iter().all(|&d| d != usize::MAX), "disconnected");
        ecc
    }

    #[test]
    fn fb_8ary_2flat_is_a_clique() {
        // k-ary 2-flat = complete graph on k routers.
        let fb = FlattenedButterfly::new(8, 2).unwrap();
        assert_eq!(fb.n(), 8);
        assert_eq!(fb.graph().edge_count(), 8 * 7 / 2);
        assert_eq!(bfs_ecc(fb.graph(), 0), 1);
    }

    #[test]
    fn fb_degree_and_diameter() {
        // 4-ary 3-flat: 16 routers, degree (4-1)*2 = 6, diameter 2.
        let fb = FlattenedButterfly::new(4, 3).unwrap();
        assert_eq!(fb.n(), 16);
        for v in 0..16 {
            assert_eq!(fb.graph().degree(v), 6);
        }
        assert_eq!(bfs_ecc(fb.graph(), 0), 2);
    }

    #[test]
    fn fb_paper_scale() {
        // 8-ary 4-flat: 512 routers, degree 21, diameter 3.
        let fb = FlattenedButterfly::new(8, 4).unwrap();
        assert_eq!(fb.n(), 512);
        assert_eq!(fb.graph().max_degree(), 21);
        assert_eq!(bfs_ecc(fb.graph(), 0), 3);
    }

    #[test]
    fn dragonfly_structure() {
        // a = 4, h = 2: 9 groups of 4 = 36 routers, degree 3 + 2 = 5.
        let df = Dragonfly::new(4, 2).unwrap();
        assert_eq!(df.groups(), 9);
        assert_eq!(df.n(), 36);
        for v in 0..36 {
            assert_eq!(df.graph().degree(v), 5, "v={v}");
        }
        assert!(df.graph().is_connected());
        // Diameter <= 3 (local, global, local).
        assert!(bfs_ecc(df.graph(), 0) <= 3);
    }

    #[test]
    fn dragonfly_every_group_pair_linked_once() {
        let df = Dragonfly::new(3, 1).unwrap(); // 4 groups of 3
        let a = df.a();
        let mut pairs = std::collections::HashSet::new();
        for e in df.graph().edges() {
            if e.kind == LinkKind::LongRange {
                let (g1, g2) = (e.a / a, e.b / a);
                assert_ne!(g1, g2);
                assert!(pairs.insert((g1.min(g2), g1.max(g2))), "duplicate global");
            }
        }
        assert_eq!(pairs.len(), 4 * 3 / 2);
    }

    #[test]
    fn dragonfly_global_slots_balanced() {
        // Every router carries exactly h global links.
        let df = Dragonfly::new(4, 2).unwrap();
        let mut counts = vec![0usize; df.n()];
        for e in df.graph().edges() {
            if e.kind == LinkKind::LongRange {
                counts[e.a] += 1;
                counts[e.b] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 2), "{counts:?}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(FlattenedButterfly::new(1, 3).is_err());
        assert!(FlattenedButterfly::new(4, 1).is_err());
        assert!(Dragonfly::new(1, 2).is_err());
        assert!(Dragonfly::new(4, 0).is_err());
    }
}
