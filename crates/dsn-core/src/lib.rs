//! # dsn-core — topologies for Distributed Shortcut Networks
//!
//! Graph substrate and topology generators reproducing **"Distributed
//! Shortcut Networks: Layout-aware Low-degree Topologies Exploiting
//! Small-world Effect"** (ICPP 2013).
//!
//! The crate provides:
//!
//! * [`graph::Graph`] — a compact undirected multigraph with typed links,
//!   shared by every family and by the routing / layout / simulation crates;
//! * [`dsn::Dsn`] — the paper's contribution, the basic DSN-x-n topology,
//!   with level/height/shortcut metadata for the custom routing algorithm;
//! * [`dsn_ext`] — the Section V extensions (DSN-E, DSN-D-x, flexible DSN);
//! * baselines the paper evaluates against: [`torus::Torus`] (2-D/3-D),
//!   [`dln::Dln`] / [`dln::DlnRandom`] (the "RANDOM" DLN-2-2),
//!   [`kleinberg::Kleinberg`], [`random_regular::RandomRegular`], and the
//!   related-work classics in [`classic`];
//! * [`topology::TopologySpec`] — a uniform parametric handle used by the
//!   figure-regeneration harnesses.
//!
//! ## Quick example
//!
//! ```
//! use dsn_core::dsn::Dsn;
//!
//! let dsn = Dsn::new(1024, 9).expect("valid parameters");
//! assert_eq!(dsn.p(), 10);
//! // Fact 1: low constant degree
//! assert!(dsn.graph().max_degree() <= 5);
//! assert!(dsn.graph().avg_degree() <= 4.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classic;
pub mod dln;
pub mod dsn;
pub mod dsn_ext;
pub mod error;
pub mod export;
pub mod fault;
pub mod graph;
pub mod highradix;
pub mod kautz;
pub mod kleinberg;
pub mod parallel;
pub mod random_regular;
pub mod ring;
pub mod star;
pub mod topology;
pub mod torus;
pub mod util;

pub use dsn::Dsn;
pub use error::{Result, TopologyError};
pub use fault::EdgeMask;
pub use graph::{Edge, EdgeId, Graph, LinkKind, NodeId};
pub use parallel::Parallelism;
pub use topology::{BuiltTopology, TopologySpec};
