//! k-ary n-dimensional torus and mesh topologies (the paper's primary
//! non-random baseline, Section VI).
//!
//! The paper compares DSN against a same-degree 2-D torus; we also provide
//! 3-D tori (for the degree-6 comparison mentioned in Section VI.B) and
//! meshes, all as special cases of a general mixed-radix torus.

use crate::error::{Result, TopologyError};
use crate::graph::{Graph, LinkKind, NodeId};

/// A mixed-radix torus (or mesh) with the given per-dimension radices.
#[derive(Debug, Clone)]
pub struct Torus {
    radices: Vec<usize>,
    wrap: bool,
    graph: Graph,
}

impl Torus {
    /// Build a torus with wrap-around links in every dimension.
    ///
    /// Every radix must be at least 2. A radix-2 dimension contributes a
    /// single link (the "wrap" would be a parallel edge and is omitted).
    pub fn new(radices: &[usize]) -> Result<Self> {
        Self::build(radices, true)
    }

    /// Build a mesh (no wrap-around links).
    pub fn mesh(radices: &[usize]) -> Result<Self> {
        Self::build(radices, false)
    }

    /// Build the most-square 2-D torus with exactly `n` nodes when `n` is a
    /// power of two (radices `2^ceil(k/2) x 2^floor(k/2)`), or the most
    /// square factorization otherwise.
    pub fn square_2d(n: usize) -> Result<Self> {
        if n < 4 {
            return Err(TopologyError::UnsupportedSize {
                n,
                requirement: "n >= 4 for a 2-D torus".into(),
            });
        }
        // Most-square factorization: largest divisor <= sqrt(n).
        let mut a = (n as f64).sqrt() as usize;
        while a > 1 && !n.is_multiple_of(a) {
            a -= 1;
        }
        let b = n / a;
        if a < 2 {
            return Err(TopologyError::UnsupportedSize {
                n,
                requirement: "n must have a divisor in [2, sqrt(n)] for a 2-D torus".into(),
            });
        }
        Self::new(&[a, b])
    }

    /// Build the most-cubic 3-D torus with exactly `n` nodes.
    pub fn cube_3d(n: usize) -> Result<Self> {
        if n < 8 {
            return Err(TopologyError::UnsupportedSize {
                n,
                requirement: "n >= 8 for a 3-D torus".into(),
            });
        }
        // Find the factorization a*b*c = n minimizing max/min ratio, with
        // a <= b <= c and a, b >= 2.
        let mut best: Option<(usize, usize, usize)> = None;
        let mut a = 2usize;
        while a * a * a <= n {
            if n.is_multiple_of(a) {
                let m = n / a;
                let mut b = a;
                while b * b <= m {
                    if m.is_multiple_of(b) {
                        let c = m / b;
                        let cand = (a, b, c);
                        best = match best {
                            None => Some(cand),
                            Some(prev) => {
                                if (cand.2 as f64 / cand.0 as f64) < (prev.2 as f64 / prev.0 as f64)
                                {
                                    Some(cand)
                                } else {
                                    Some(prev)
                                }
                            }
                        };
                    }
                    b += 1;
                }
            }
            a += 1;
        }
        let (a, b, c) = best.ok_or_else(|| TopologyError::UnsupportedSize {
            n,
            requirement: "n must factor as a*b*c with a,b >= 2".into(),
        })?;
        Self::new(&[a, b, c])
    }

    fn build(radices: &[usize], wrap: bool) -> Result<Self> {
        if radices.is_empty() {
            return Err(TopologyError::InvalidParameter {
                name: "radices",
                constraint: "at least one dimension".into(),
                value: "[]".into(),
            });
        }
        if radices.len() > u8::MAX as usize {
            return Err(TopologyError::InvalidParameter {
                name: "radices",
                constraint: "at most 255 dimensions".into(),
                value: radices.len().to_string(),
            });
        }
        for (d, &k) in radices.iter().enumerate() {
            if k < 2 {
                return Err(TopologyError::InvalidParameter {
                    name: "radices",
                    constraint: "every radix >= 2".into(),
                    value: format!("radices[{d}] = {k}"),
                });
            }
        }
        let n: usize = radices.iter().product();
        let mut graph = Graph::new(n);
        let mut coord = vec![0usize; radices.len()];
        for v in 0..n {
            Self::coords_of(v, radices, &mut coord);
            for (d, &k) in radices.iter().enumerate() {
                let c = coord[d];
                // +1 neighbor (internal link), owned by the lower coordinate.
                if c + 1 < k {
                    coord[d] = c + 1;
                    let u = Self::id_of(&coord, radices);
                    coord[d] = c;
                    graph.add_edge(
                        v,
                        u,
                        LinkKind::Torus {
                            dim: d as u8,
                            wrap: false,
                        },
                    );
                } else if wrap && k > 2 {
                    // wrap link k-1 -> 0, owned by the highest coordinate;
                    // for k == 2 the wrap would duplicate the internal link.
                    coord[d] = 0;
                    let u = Self::id_of(&coord, radices);
                    coord[d] = c;
                    graph.add_edge(
                        u,
                        v,
                        LinkKind::Torus {
                            dim: d as u8,
                            wrap: true,
                        },
                    );
                }
            }
        }
        Ok(Torus {
            radices: radices.to_vec(),
            wrap,
            graph,
        })
    }

    /// Per-dimension radices.
    #[inline]
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// Whether wrap-around links are present.
    #[inline]
    pub fn is_torus(&self) -> bool {
        self.wrap
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Coordinates of node `v` (row-major: last dimension varies fastest).
    pub fn coords(&self, v: NodeId) -> Vec<usize> {
        let mut c = vec![0; self.radices.len()];
        Self::coords_of(v, &self.radices, &mut c);
        c
    }

    /// Node id for the given coordinates.
    pub fn node_at(&self, coords: &[usize]) -> NodeId {
        Self::id_of(coords, &self.radices)
    }

    fn coords_of(v: NodeId, radices: &[usize], out: &mut [usize]) {
        let mut rest = v;
        for d in (0..radices.len()).rev() {
            out[d] = rest % radices[d];
            rest /= radices[d];
        }
    }

    fn id_of(coords: &[usize], radices: &[usize]) -> NodeId {
        let mut v = 0usize;
        for (c, k) in coords.iter().zip(radices) {
            v = v * k + c;
        }
        v
    }

    /// Torus (wrap-aware) hop distance between two nodes — the graph
    /// distance, usable as an oracle in tests.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> usize {
        let ca = self.coords(a);
        let cb = self.coords(b);
        ca.iter()
            .zip(&cb)
            .zip(&self.radices)
            .map(|((&x, &y), &k)| {
                let d = x.abs_diff(y);
                if self.wrap {
                    d.min(k - d)
                } else {
                    d
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_4x4_is_4_regular() {
        let t = Torus::new(&[4, 4]).unwrap();
        assert_eq!(t.n(), 16);
        let g = t.graph();
        assert_eq!(g.edge_count(), 32);
        for v in 0..16 {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn radix_2_dimension_has_no_parallel_wrap() {
        let t = Torus::new(&[2, 4]).unwrap();
        let g = t.graph();
        // 2x4: dim-0 contributes 4 links (one per column), dim-1 contributes
        // 2 rows * 4 links = 8. Total 12, max degree 4.
        assert_eq!(g.edge_count(), 12);
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn mesh_has_no_wrap() {
        let m = Torus::mesh(&[4, 4]).unwrap();
        assert_eq!(m.graph().edge_count(), 24);
        assert!(m
            .graph()
            .edges()
            .iter()
            .all(|e| matches!(e.kind, LinkKind::Torus { wrap: false, .. })));
    }

    #[test]
    fn coords_roundtrip() {
        let t = Torus::new(&[3, 4, 5]).unwrap();
        for v in 0..t.n() {
            assert_eq!(t.node_at(&t.coords(v)), v);
        }
    }

    #[test]
    fn square_2d_powers_of_two() {
        for k in 5..=11u32 {
            let n = 1usize << k;
            let t = Torus::square_2d(n).unwrap();
            assert_eq!(t.n(), n);
            let r = t.radices();
            assert_eq!(r.len(), 2);
            assert_eq!(r[0] * r[1], n);
            // most-square: ratio at most 2 for powers of two
            assert!(r[1] / r[0] <= 2);
            assert!(t.graph().is_connected());
        }
    }

    #[test]
    fn cube_3d_balanced() {
        let t = Torus::cube_3d(64).unwrap();
        assert_eq!(t.radices(), &[4, 4, 4]);
        let t = Torus::cube_3d(512).unwrap();
        assert_eq!(t.radices(), &[8, 8, 8]);
        for v in 0..512 {
            assert_eq!(t.graph().degree(v), 6);
        }
    }

    #[test]
    fn hop_distance_is_graph_distance() {
        let t = Torus::new(&[4, 8]).unwrap();
        // node 0 = (0,0); node (3,7) wraps to distance 1+1 = 2
        let far = t.node_at(&[3, 7]);
        assert_eq!(t.hop_distance(0, far), 2);
        let mid = t.node_at(&[2, 4]);
        assert_eq!(t.hop_distance(0, mid), 2 + 4);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Torus::new(&[]).is_err());
        assert!(Torus::new(&[1, 4]).is_err());
        assert!(Torus::square_2d(2).is_err());
    }
}
