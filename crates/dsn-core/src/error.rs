//! Error type shared by all topology constructors.

use std::fmt;

/// Why a topology could not be constructed from the given parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A parameter was out of its documented range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: String,
        /// The value that was supplied.
        value: String,
    },
    /// The requested node count is unsupported by this family
    /// (e.g. a hypercube needs a power of two).
    UnsupportedSize {
        /// Requested node count.
        n: usize,
        /// What the family requires.
        requirement: String,
    },
    /// A randomized construction failed to converge
    /// (e.g. random-regular stub matching ran out of retries).
    ConstructionFailed(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidParameter {
                name,
                constraint,
                value,
            } => write!(
                f,
                "invalid parameter `{name}` = {value}: requires {constraint}"
            ),
            TopologyError::UnsupportedSize { n, requirement } => {
                write!(f, "unsupported size n = {n}: requires {requirement}")
            }
            TopologyError::ConstructionFailed(msg) => write!(f, "construction failed: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Convenience alias used by every constructor in this crate.
pub type Result<T> = std::result::Result<T, TopologyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TopologyError::InvalidParameter {
            name: "x",
            constraint: "1 <= x <= p-1".into(),
            value: "9".into(),
        };
        let s = e.to_string();
        assert!(s.contains('x') && s.contains('9') && s.contains("p-1"));

        let e = TopologyError::UnsupportedSize {
            n: 12,
            requirement: "a power of two".into(),
        };
        assert!(e.to_string().contains("12"));

        let e = TopologyError::ConstructionFailed("ran out of retries".into());
        assert!(e.to_string().contains("retries"));
    }
}
