//! Plain ring topology — the degenerate base every loop network shares, and
//! a useful worst-case baseline in the analyses.

use crate::error::{Result, TopologyError};
use crate::graph::{Graph, LinkKind};

/// A ring of `n` nodes (degree 2, diameter `floor(n/2)`).
#[derive(Debug, Clone)]
pub struct Ring {
    graph: Graph,
}

impl Ring {
    /// Build a ring on `n >= 3` nodes.
    pub fn new(n: usize) -> Result<Self> {
        if n < 3 {
            return Err(TopologyError::UnsupportedSize {
                n,
                requirement: "n >= 3".into(),
            });
        }
        let mut graph = Graph::new(n);
        for i in 0..n {
            let j = (i + 1) % n;
            graph.add_edge(i.min(j), i.max(j), LinkKind::Ring);
        }
        Ok(Ring { graph })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying physical graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume self and return the physical graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shape() {
        let r = Ring::new(10).unwrap();
        assert_eq!(r.graph().edge_count(), 10);
        for v in 0..10 {
            assert_eq!(r.graph().degree(v), 2);
        }
        assert!(r.graph().is_connected());
    }

    #[test]
    fn tiny_rejected() {
        assert!(Ring::new(2).is_err());
        assert!(Ring::new(3).is_ok());
    }
}
