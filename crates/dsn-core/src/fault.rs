//! Live fault masking over a [`Graph`]: which edges and switches are
//! currently operational.
//!
//! [`Graph`] itself is append-only and analyses treat it as immutable, so
//! runtime faults (a link or switch going down mid-run and possibly coming
//! back) are represented *outside* the graph by an [`EdgeMask`]. Unlike
//! [`Graph::without_edges`], which renumbers edges densely, a mask keeps
//! the original edge and channel ids — which is what the flit-level
//! simulator needs, since all of its per-channel state is indexed by the
//! original channel numbering.
//!
//! An edge is *alive* when it is administratively up **and** both of its
//! endpoints are up; a switch going down therefore kills every incident
//! link without touching their administrative state, so the links revive
//! when the switch does.

use crate::graph::{EdgeId, Graph};
use crate::NodeId;

/// Mutable liveness overlay for a graph's edges and nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeMask {
    /// Administrative state per edge (`false` = link itself failed).
    edge_admin: Vec<bool>,
    /// Liveness per node (`false` = switch failed).
    node_up: Vec<bool>,
    /// Cached `edge_admin[e] && node_up[a] && node_up[b]` per edge.
    alive: Vec<bool>,
    alive_edges: usize,
}

impl EdgeMask {
    /// A mask with every edge and node alive.
    pub fn fully_alive(g: &Graph) -> Self {
        EdgeMask {
            edge_admin: vec![true; g.edge_count()],
            node_up: vec![true; g.node_count()],
            alive: vec![true; g.edge_count()],
            alive_edges: g.edge_count(),
        }
    }

    /// Whether edge `e` is currently alive (admin-up with both ends up).
    #[inline]
    pub fn edge_alive(&self, e: EdgeId) -> bool {
        self.alive[e]
    }

    /// Whether the directed channel `ch` (= `2e` or `2e + 1`) is alive.
    #[inline]
    pub fn channel_alive(&self, ch: usize) -> bool {
        self.alive[ch / 2]
    }

    /// Whether switch `v` is up.
    #[inline]
    pub fn node_up(&self, v: NodeId) -> bool {
        self.node_up[v]
    }

    /// Number of currently-alive edges.
    #[inline]
    pub fn alive_edges(&self) -> usize {
        self.alive_edges
    }

    /// True when nothing is failed.
    pub fn is_full(&self) -> bool {
        self.alive_edges == self.alive.len() && self.node_up.iter().all(|&u| u)
    }

    /// Deterministic 64-bit fingerprint of the failure state, for keying
    /// routing caches across fault epochs. The pristine mask (nothing
    /// failed) always fingerprints to `0`; any degraded mask maps to a
    /// non-zero value, with identical `(edge_admin, node_up)` states —
    /// regardless of the event history that produced them — colliding on
    /// purpose.
    pub fn fingerprint(&self) -> u64 {
        if self.is_full() {
            return 0;
        }
        // FNV-1a over the failed indices, domain-tagged so an edge index
        // can never alias a node index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for (e, &up) in self.edge_admin.iter().enumerate() {
            if !up {
                mix((1u64 << 32) | e as u64);
            }
        }
        for (v, &up) in self.node_up.iter().enumerate() {
            if !up {
                mix((2u64 << 32) | v as u64);
            }
        }
        // 0 is reserved for the pristine mask.
        h.max(1)
    }

    /// Set edge `e`'s administrative state. Returns `true` when the edge's
    /// effective liveness changed (it may not — e.g. reviving a link whose
    /// endpoint switch is still down).
    pub fn set_edge_admin(&mut self, g: &Graph, e: EdgeId, up: bool) -> bool {
        assert!(e < self.edge_admin.len(), "edge {e} out of range");
        self.edge_admin[e] = up;
        self.recompute(g, e)
    }

    /// Set switch `v` up or down. Returns the incident edges whose
    /// effective liveness changed, in edge-id order.
    pub fn set_node_up(&mut self, g: &Graph, v: NodeId, up: bool) -> Vec<EdgeId> {
        assert!(v < self.node_up.len(), "node {v} out of range");
        self.node_up[v] = up;
        let mut changed: Vec<EdgeId> = g
            .neighbors(v)
            .map(|(_, e)| e)
            .filter(|&e| self.recompute(g, e))
            .collect();
        changed.sort_unstable();
        changed.dedup();
        changed
    }

    /// Recompute `alive[e]`; returns whether it changed.
    fn recompute(&mut self, g: &Graph, e: EdgeId) -> bool {
        let edge = g.edge(e);
        let now = self.edge_admin[e] && self.node_up[edge.a] && self.node_up[edge.b];
        let was = self.alive[e];
        if now != was {
            self.alive[e] = now;
            if now {
                self.alive_edges += 1;
            } else {
                self.alive_edges -= 1;
            }
        }
        now != was
    }
}

/// Connected-component labels of the survivor graph: `labels[v]` is the
/// smallest node id in `v`'s component over alive edges. Down switches get
/// their own (unreachable) singleton component.
pub fn components_masked(g: &Graph, mask: &EdgeMask) -> Vec<NodeId> {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut stack = Vec::new();
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        label[s] = s;
        if !mask.node_up(s) {
            continue; // a dead switch is its own island
        }
        stack.push(s);
        while let Some(v) = stack.pop() {
            for (u, e) in g.neighbors(v) {
                if mask.edge_alive(e) && label[u] == usize::MAX {
                    label[u] = s;
                    stack.push(u);
                }
            }
        }
    }
    label
}

/// True when every *up* node can reach every other up node over alive
/// edges (vacuously true with fewer than two up nodes).
pub fn is_connected_masked(g: &Graph, mask: &EdgeMask) -> bool {
    let labels = components_masked(g, mask);
    let mut first = None;
    for (v, &label) in labels.iter().enumerate() {
        if !mask.node_up(v) {
            continue;
        }
        match first {
            None => first = Some(label),
            Some(l) if label != l => return false,
            _ => {}
        }
    }
    true
}

/// Materialize the survivor graph: same node set, only alive edges (edge
/// ids renumbered densely, like [`Graph::without_edges`]). For static
/// analyses/oracles; the simulator itself works on the mask.
pub fn survivor_graph(g: &Graph, mask: &EdgeMask) -> Graph {
    let dead: Vec<EdgeId> = (0..g.edge_count())
        .filter(|&e| !mask.edge_alive(e))
        .collect();
    g.without_edges(&dead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LinkKind;
    use crate::ring::Ring;

    fn ring(n: usize) -> Graph {
        Ring::new(n).unwrap().into_graph()
    }

    #[test]
    fn fresh_mask_is_full() {
        let g = ring(6);
        let m = EdgeMask::fully_alive(&g);
        assert!(m.is_full());
        assert_eq!(m.alive_edges(), 6);
        for e in 0..6 {
            assert!(m.edge_alive(e));
            assert!(m.channel_alive(2 * e) && m.channel_alive(2 * e + 1));
        }
        assert!(is_connected_masked(&g, &m));
    }

    #[test]
    fn edge_admin_toggles() {
        let g = ring(6);
        let mut m = EdgeMask::fully_alive(&g);
        assert!(m.set_edge_admin(&g, 2, false));
        assert!(!m.edge_alive(2));
        assert!(!m.channel_alive(4) && !m.channel_alive(5));
        assert_eq!(m.alive_edges(), 5);
        assert!(!m.is_full());
        // one dead ring edge leaves the ring connected
        assert!(is_connected_masked(&g, &m));
        assert!(!m.set_edge_admin(&g, 2, false), "no-op repeat");
        assert!(m.set_edge_admin(&g, 2, true));
        assert!(m.is_full());
    }

    #[test]
    fn node_down_kills_incident_edges_without_admin_change() {
        let g = ring(6);
        let mut m = EdgeMask::fully_alive(&g);
        let changed = m.set_node_up(&g, 0, false);
        // ring node 0 touches edges (0,1) and (5,0)
        assert_eq!(changed.len(), 2);
        for &e in &changed {
            assert!(!m.edge_alive(e));
        }
        assert_eq!(m.alive_edges(), 4);
        // reviving the node revives exactly those edges
        let revived = m.set_node_up(&g, 0, true);
        assert_eq!(revived, changed);
        assert!(m.is_full());
    }

    #[test]
    fn admin_down_survives_node_bounce() {
        let g = ring(6);
        let mut m = EdgeMask::fully_alive(&g);
        let e01 = 0; // first ring edge touches node 0
        m.set_edge_admin(&g, e01, false);
        m.set_node_up(&g, 0, false);
        let revived = m.set_node_up(&g, 0, true);
        // the admin-down edge must NOT revive with the switch
        assert!(!revived.contains(&e01));
        assert!(!m.edge_alive(e01));
    }

    #[test]
    fn components_split_and_min_label() {
        let g = ring(6);
        let mut m = EdgeMask::fully_alive(&g);
        // cut edges (0,1) and (3,4): components {1,2,3} and {4,5,0}
        m.set_edge_admin(&g, 0, false);
        m.set_edge_admin(&g, 3, false);
        assert!(!is_connected_masked(&g, &m));
        let labels = components_masked(&g, &m);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[2], labels[3]);
        assert_eq!(labels[4], labels[5]);
        assert_eq!(labels[5], labels[0]);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn dead_node_is_singleton_component() {
        let g = ring(6);
        let mut m = EdgeMask::fully_alive(&g);
        m.set_node_up(&g, 3, false);
        let labels = components_masked(&g, &m);
        assert_eq!(labels[3], 3);
        assert!(labels.iter().enumerate().all(|(v, &l)| v == 3 || l != 3));
        // survivors 0,1,2,4,5 remain connected around the ring
        assert!(is_connected_masked(&g, &m));
    }

    #[test]
    fn fingerprint_keys_failure_state_not_history() {
        let g = ring(6);
        let mut m = EdgeMask::fully_alive(&g);
        assert_eq!(m.fingerprint(), 0, "pristine mask is always 0");
        m.set_edge_admin(&g, 2, false);
        let f1 = m.fingerprint();
        assert_ne!(f1, 0);
        // same end state via a different event history → same fingerprint
        let mut m2 = EdgeMask::fully_alive(&g);
        m2.set_edge_admin(&g, 4, false);
        m2.set_edge_admin(&g, 4, true);
        m2.set_edge_admin(&g, 2, false);
        assert_eq!(m2.fingerprint(), f1);
        // a node failure is distinct from an edge failure
        let mut m3 = EdgeMask::fully_alive(&g);
        m3.set_node_up(&g, 2, false);
        assert_ne!(m3.fingerprint(), f1);
        // full recovery returns to the pristine fingerprint
        m.set_edge_admin(&g, 2, true);
        assert_eq!(m.fingerprint(), 0);
    }

    #[test]
    fn survivor_graph_matches_mask() {
        let mut g = ring(5);
        g.add_edge(0, 2, LinkKind::Random);
        let mut m = EdgeMask::fully_alive(&g);
        m.set_edge_admin(&g, 1, false);
        let s = survivor_graph(&g, &m);
        assert_eq!(s.node_count(), 5);
        assert_eq!(s.edge_count(), 5);
        assert!(!s.has_edge(1, 2));
        assert!(s.has_edge(0, 2));
    }
}
