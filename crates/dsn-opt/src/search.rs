//! Seeded, bit-reproducible search drivers.
//!
//! Both drivers are deterministic functions of `(start, objective config,
//! search config)`: move proposals come from seeded RNG streams, candidate
//! evaluation is bit-identical across [`dsn_core::Parallelism`] policies (the APSP
//! and cable kernels guarantee this), and every tie is broken by the
//! candidate fingerprint. The returned [`SearchResult::trace`] is part of
//! the contract — the determinism tests compare it byte for byte between
//! serial and multi-worker runs.
//!
//! * [`anneal_shortcuts`] — simulated annealing over single moves,
//!   reusing the Metropolis/cooling core shared with the cabinet
//!   annealer ([`dsn_layout::anneal::Anneal`]).
//! * [`evolve`] — a (μ+λ) evolution strategy: each offspring mutates a
//!   parent under its own SplitMix64-derived stream, offspring are
//!   evaluated in parallel in index order, and survivor selection is a
//!   stable sort on `(scalar, fingerprint)`.

use crate::candidate::Candidate;
use crate::mix_seed;
use crate::moves::MoveGen;
use crate::objective::{Objective, Score};
use dsn_layout::anneal::Anneal;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use rayon::prelude::*;

/// One recorded search step: the candidate evaluated at that step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Step index (SA iteration or ES generation).
    pub step: u32,
    /// Bit pattern of the evaluated candidate's scalar objective.
    pub scalar_bits: u64,
    /// Fingerprint of the evaluated candidate (SA) or generation best
    /// (ES).
    pub fingerprint: u64,
    /// Whether the step improved/kept the candidate (SA: move accepted;
    /// ES: generation best improved on the previous).
    pub kept: bool,
}

/// Outcome of a search run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best candidate found.
    pub best: Candidate,
    /// Its cheap score.
    pub best_score: Score,
    /// Scalar objective of the best candidate.
    pub best_scalar: f64,
    /// Per-step record; byte-identical across parallelism policies.
    pub trace: Vec<TraceStep>,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
}

/// Simulated-annealing configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SaConfig {
    /// Move attempts.
    pub iterations: usize,
    /// Starting temperature in scalar-objective units (ASPL hops under
    /// the default objective).
    pub initial_temp: f64,
    /// Geometric cooling factor (applied every `iterations / 100` steps).
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
    /// Probability of a Kleinberg span-reanchor move (vs link exchange).
    pub reanchor_bias: f64,
    /// Span-law exponent for reanchor moves (`1.0` = ring-navigable).
    pub alpha: f64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            iterations: 2_000,
            initial_temp: 0.05,
            cooling: 0.95,
            seed: 0x0D5A_0001,
            reanchor_bias: 0.5,
            alpha: 1.0,
        }
    }
}

/// (μ+λ) evolution-strategy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EsConfig {
    /// Survivor population size μ.
    pub mu: usize,
    /// Offspring per generation λ.
    pub lambda: usize,
    /// Generations.
    pub generations: usize,
    /// Rewiring moves attempted per offspring.
    pub moves_per_offspring: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability of a Kleinberg span-reanchor move (vs link exchange).
    pub reanchor_bias: f64,
    /// Span-law exponent for reanchor moves.
    pub alpha: f64,
}

impl Default for EsConfig {
    fn default() -> Self {
        EsConfig {
            mu: 4,
            lambda: 8,
            generations: 40,
            moves_per_offspring: 2,
            seed: 0x0D5A_0002,
            reanchor_bias: 0.5,
            alpha: 1.0,
        }
    }
}

/// Simulated annealing over shortcut rewirings, sharing the Metropolis
/// core with the cabinet-placement annealer. Returns the best candidate
/// seen (not necessarily the final state).
pub fn anneal_shortcuts(start: &Candidate, obj: &Objective, cfg: &SaConfig) -> SearchResult {
    let n = start.graph().node_count();
    let gen = MoveGen::new(n, cfg.alpha, cfg.reanchor_bias).expect("valid move parameters");
    let mut cur = start.clone();
    let start_score = obj.score(cur.graph());
    let mut cur_scalar = obj.scalar(&start_score);
    let mut evaluations = 1usize;

    let mut best = cur.clone();
    let mut best_score = start_score;
    let mut best_scalar = cur_scalar;

    let mut sa = Anneal::new(cfg.seed, cfg.initial_temp, cfg.cooling, cfg.iterations);
    let mut trace = Vec::with_capacity(cfg.iterations);

    for it in 0..cfg.iterations {
        let Some(mv) = gen.propose(&mut cur, sa.rng()) else {
            // Rejected draw: no evaluation, no cooling (mirrors the
            // cabinet annealer's same-cabinet skip).
            continue;
        };
        let score = obj.score(cur.graph());
        let scalar = obj.scalar(&score);
        evaluations += 1;
        let kept = sa.accept(scalar - cur_scalar);
        trace.push(TraceStep {
            step: it as u32,
            scalar_bits: scalar.to_bits(),
            fingerprint: cur.fingerprint(),
            kept,
        });
        if kept {
            cur_scalar = scalar;
            if scalar < best_scalar {
                best = cur.clone();
                best_score = score;
                best_scalar = scalar;
            }
        } else {
            mv.undo(cur.graph_mut());
        }
        sa.cool_at(it);
    }

    SearchResult {
        best,
        best_score,
        best_scalar,
        trace,
        evaluations,
    }
}

/// Mutate `parent` with `moves` proposal attempts under its own seeded
/// stream.
fn mutate(parent: &Candidate, gen: &MoveGen, seed: u64, moves: usize) -> Candidate {
    let mut child = parent.clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..moves {
        let _ = gen.propose(&mut child, &mut rng);
    }
    child
}

/// (μ+λ) evolution strategy. Offspring are generated serially under
/// per-index SplitMix64 streams and evaluated concurrently (index-order
/// collection), so the result is bit-identical for any [`dsn_core::Parallelism`]
/// policy carried by the objective.
pub fn evolve(start: &Candidate, obj: &Objective, cfg: &EsConfig) -> SearchResult {
    assert!(cfg.mu >= 1 && cfg.lambda >= 1, "mu and lambda must be >= 1");
    let n = start.graph().node_count();
    let gen = MoveGen::new(n, cfg.alpha, cfg.reanchor_bias).expect("valid move parameters");
    let mut evaluations = 0usize;

    let evaluate = |cands: &[Candidate]| -> Vec<(Score, f64, u64)> {
        if obj.par.is_serial() {
            cands
                .iter()
                .map(|c| {
                    let s = obj.score(c.graph());
                    (s, obj.scalar(&s), c.fingerprint())
                })
                .collect()
        } else {
            cands
                .par_iter()
                .map(|c| {
                    let s = obj.score(c.graph());
                    (s, obj.scalar(&s), c.fingerprint())
                })
                .collect()
        }
    };

    // Founders: the start point plus mu-1 mutants of it.
    let founders: Vec<Candidate> = (0..cfg.mu)
        .map(|k| {
            if k == 0 {
                start.clone()
            } else {
                mutate(
                    start,
                    &gen,
                    mix_seed(cfg.seed, k as u64),
                    cfg.moves_per_offspring,
                )
            }
        })
        .collect();
    let founder_evals = evaluate(&founders);
    evaluations += founders.len();
    let mut population: Vec<(Candidate, Score, f64, u64)> = founders
        .into_iter()
        .zip(founder_evals)
        .map(|(c, (s, v, fp))| (c, s, v, fp))
        .collect();
    sort_population(&mut population);

    let mut trace = Vec::with_capacity(cfg.generations);
    let mut last_best = f64::INFINITY;

    for g in 0..cfg.generations {
        // Per-offspring streams: parent choice + mutation draws.
        let offspring: Vec<Candidate> = (0..cfg.lambda)
            .map(|o| {
                let stream = mix_seed(cfg.seed ^ 0xE5, ((g as u64) << 20) | o as u64);
                let mut rng = SmallRng::seed_from_u64(stream);
                let parent = rng.gen_range(0..population.len());
                let mut child = population[parent].0.clone();
                for _ in 0..cfg.moves_per_offspring {
                    let _ = gen.propose(&mut child, &mut rng);
                }
                child
            })
            .collect();
        let evals = evaluate(&offspring);
        evaluations += offspring.len();
        population.extend(
            offspring
                .into_iter()
                .zip(evals)
                .map(|(c, (s, v, fp))| (c, s, v, fp)),
        );
        sort_population(&mut population);
        population.truncate(cfg.mu);

        let best = &population[0];
        let kept = best.2 < last_best;
        last_best = last_best.min(best.2);
        trace.push(TraceStep {
            step: g as u32,
            scalar_bits: best.2.to_bits(),
            fingerprint: best.3,
            kept,
        });
    }

    let (best, best_score, best_scalar, _) = population.swap_remove(0);
    SearchResult {
        best,
        best_score,
        best_scalar,
        trace,
        evaluations,
    }
}

/// Stable survivor order: scalar, then fingerprint, preserving insertion
/// order on full ties (clones of one topology).
fn sort_population(pop: &mut [(Candidate, Score, f64, u64)]) {
    pop.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.3.cmp(&b.3)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsn_core::Parallelism;

    #[test]
    fn sa_never_returns_worse_than_start() {
        let start = Candidate::from_dsn(64).unwrap();
        let obj = Objective::aspl_only(Parallelism::serial());
        let start_scalar = obj.scalar(&obj.score(start.graph()));
        let cfg = SaConfig {
            iterations: 200,
            ..SaConfig::default()
        };
        let r = anneal_shortcuts(&start, &obj, &cfg);
        assert!(r.best_scalar <= start_scalar + 1e-12);
        assert!(r.evaluations > 1);
        assert!(!r.trace.is_empty());
        assert!(r.best_score.connected);
    }

    #[test]
    fn es_improves_or_keeps_kleinberg_start() {
        let start = Candidate::kleinberg_ring(64, 1, 1.0, 5).unwrap();
        let obj = Objective::aspl_only(Parallelism::serial());
        let start_scalar = obj.scalar(&obj.score(start.graph()));
        let cfg = EsConfig {
            generations: 10,
            ..EsConfig::default()
        };
        let r = evolve(&start, &obj, &cfg);
        assert!(r.best_scalar <= start_scalar + 1e-12);
        assert_eq!(r.trace.len(), 10);
        assert!(r.best_score.connected);
        // degree multiset preserved through the whole search
        assert_eq!(
            r.best.graph().degree_histogram(),
            start.graph().degree_histogram()
        );
    }

    #[test]
    fn budget_keeps_search_feasible() {
        let start = Candidate::from_dsn(64).unwrap();
        let obj0 = Objective::aspl_only(Parallelism::serial());
        let start_cable = obj0.score(start.graph()).cable_m;
        let obj = Objective::aspl_under_budget(start_cable, Parallelism::serial());
        let cfg = SaConfig {
            iterations: 300,
            ..SaConfig::default()
        };
        let r = anneal_shortcuts(&start, &obj, &cfg);
        assert!(
            r.best_score.within_budget,
            "best exceeded budget: {} > {start_cable}",
            r.best_score.cable_m
        );
    }
}
