//! # dsn-opt — shortcut-placement search under a cable budget
//!
//! The paper fixes shortcut placement deterministically (span-`2^k` ring
//! augmentation). This crate asks the follow-up question from the
//! quality-vs-cost literature: *can a search find a better placement once
//! layout-aware cable cost is charged, or is DSN already on the Pareto
//! frontier?*
//!
//! The building blocks:
//!
//! * [`candidate::Candidate`] — a graph with a movable shortcut set on a
//!   fixed substrate (ring links never move, so every candidate stays
//!   connected), plus a stable topology fingerprint;
//! * [`moves::MoveGen`] — degree-preserving rewiring proposals: uniform
//!   link exchanges and Kleinberg-biased span reanchors drawn from
//!   [`dsn_core::kleinberg::RingSpanDist`];
//! * [`objective::Objective`] — pluggable scoring: ASPL via the parallel
//!   APSP in `dsn-metrics`, cable cost via the `dsn-layout` model, an
//!   optional hard cable budget, and [`objective::SatProbe`] for scoring
//!   finalists on saturation load through `dsn-sim`'s cached sweep;
//! * [`search`] — two seeded, bit-reproducible drivers sharing the
//!   Metropolis core of [`dsn_layout::anneal`]: simulated annealing
//!   ([`search::anneal_shortcuts`]) and a (μ+λ) evolutionary loop
//!   ([`search::evolve`]) with deterministic parallel candidate
//!   evaluation.
//!
//! Identical seed + config produce a byte-identical best candidate and
//! search trace regardless of the [`dsn_core::Parallelism`] policy — the
//! determinism tests pin this.
//!
//! ```
//! use dsn_core::Parallelism;
//! use dsn_opt::{anneal_shortcuts, Candidate, Objective, SaConfig};
//!
//! let start = Candidate::from_dsn(64).unwrap();
//! let obj = Objective::aspl_under_budget(200.0, Parallelism::serial());
//! let cfg = SaConfig {
//!     iterations: 50,
//!     ..SaConfig::default()
//! };
//! let result = anneal_shortcuts(&start, &obj, &cfg);
//! assert!(result.best_score.connected);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod candidate;
pub mod moves;
pub mod objective;
pub mod search;

pub use candidate::Candidate;
pub use moves::{AppliedMove, MoveGen};
pub use objective::{Objective, SatProbe, Score};
pub use search::{anneal_shortcuts, evolve, EsConfig, SaConfig, SearchResult, TraceStep};

/// SplitMix64 mix of a base seed and a stream index — the per-offspring /
/// per-candidate seeding primitive. Matches the finalizer the simulator
/// uses for per-host streams, so distinct indices give decorrelated
/// streams deterministically.
#[inline]
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_decorrelates_indices() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix_seed(42, 0));
    }
}
