//! Multi-objective scoring for candidate topologies.
//!
//! The cheap score every search step pays: exact ASPL/diameter from the
//! parallel APSP sweep in `dsn-metrics`, plus total cable under the
//! `dsn-layout` model on a linear placement (the paper's machine-room
//! assumption; DSN's linear order is near-optimal on ring-structured
//! candidates, so the comparison does not hand the search a layout the
//! baseline lacks). An optional hard cable budget turns the search into
//! "minimize ASPL subject to cable ≤ budget" via a steep penalty.
//!
//! Finalists get the expensive axis — saturation load — through
//! [`SatProbe`], which drives `dsn_sim`'s cached saturation search with a
//! shared [`RoutingCache`] so repeated probes of the same graph reuse the
//! routing build.

use dsn_core::graph::Graph;
use dsn_core::Parallelism;
use dsn_layout::{cable_stats, CableModel, LinearPlacement};
use dsn_metrics::apsp::path_stats_with;
use dsn_sim::sweep::find_saturation_cached;
use dsn_sim::{AdaptiveEscape, RoutingCache, SimConfig, TrafficPattern};
use std::sync::Arc;

/// Scalar penalty per unit of fractional budget excess: steep enough that
/// an over-budget candidate never beats a feasible one on ASPL terms.
const BUDGET_PENALTY: f64 = 1.0e6;

/// Scalar assigned to disconnected candidates (finite, so Metropolis
/// deltas stay well-defined; large, so they are always rejected against
/// any connected state).
const DISCONNECTED_PENALTY: f64 = 1.0e12;

/// The cheap per-step score of a candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Exact average shortest path length (hops).
    pub aspl: f64,
    /// Exact diameter (hops).
    pub diameter: u32,
    /// Total cable (meters) on the linear placement.
    pub cable_m: f64,
    /// Whether the graph is connected.
    pub connected: bool,
    /// Whether the cable bill respects the budget (true when no budget).
    pub within_budget: bool,
}

/// Pluggable objective: weights, cable model, and an optional budget.
#[derive(Debug, Clone)]
pub struct Objective {
    /// Cable model charged to every candidate.
    pub model: CableModel,
    /// Switches per cabinet for the linear placement.
    pub capacity: usize,
    /// Hard cable budget in meters (`None` = unconstrained).
    pub budget_m: Option<f64>,
    /// Weight on ASPL in the scalarization.
    pub w_aspl: f64,
    /// Weight on total cable meters in the scalarization.
    pub w_cable: f64,
    /// Parallelism policy for the APSP sweep.
    pub par: Parallelism,
}

impl Objective {
    /// The frontier study's objective: minimize ASPL subject to a hard
    /// cable budget (lexicographic via penalty), APSP under `par`.
    pub fn aspl_under_budget(budget_m: f64, par: Parallelism) -> Self {
        Objective {
            model: CableModel::default(),
            capacity: CableModel::default().switches_per_cabinet,
            budget_m: Some(budget_m),
            w_aspl: 1.0,
            w_cable: 0.0,
            par,
        }
    }

    /// Unconstrained ASPL minimization (useful for tests and ablations).
    pub fn aspl_only(par: Parallelism) -> Self {
        Objective {
            model: CableModel::default(),
            capacity: CableModel::default().switches_per_cabinet,
            budget_m: None,
            w_aspl: 1.0,
            w_cable: 0.0,
            par,
        }
    }

    /// Score a candidate graph: one APSP sweep + one cable pass.
    pub fn score(&self, g: &Graph) -> Score {
        let stats = path_stats_with(g, &self.par);
        let placement = LinearPlacement::new(g.node_count(), self.capacity.max(1));
        let cable = cable_stats(g, &placement, &self.model);
        let connected = stats.unreachable_pairs == 0;
        // Relative slack absorbs summation-order float noise: a rewiring
        // that keeps the same multiset of cable runs must not flip
        // feasibility because the edge list re-sums in a new order.
        let within_budget = match self.budget_m {
            Some(b) => cable.total_m <= b * (1.0 + 1e-9),
            None => true,
        };
        Score {
            aspl: stats.aspl,
            diameter: stats.diameter,
            cable_m: cable.total_m,
            connected,
            within_budget,
        }
    }

    /// Collapse a score to the scalar the searches minimize. Finite for
    /// every input so Metropolis deltas never go NaN.
    pub fn scalar(&self, s: &Score) -> f64 {
        if !s.connected {
            return DISCONNECTED_PENALTY;
        }
        let mut v = self.w_aspl * s.aspl + self.w_cable * s.cable_m;
        if let Some(b) = self.budget_m {
            if !s.within_budget {
                v += BUDGET_PENALTY * (s.cable_m / b.max(1e-9) - 1.0);
            }
        }
        v
    }
}

/// Saturation prober for finalist candidates: wraps
/// [`find_saturation_cached`] with a shared routing cache and fixed
/// search window, so every finalist is measured under identical terms.
pub struct SatProbe {
    /// Simulator configuration (engine, horizons, VCs).
    pub cfg: SimConfig,
    /// Shared routing cache (keyed on graph identity + scheme).
    pub cache: Arc<RoutingCache>,
    /// Traffic pattern the saturation is probed under.
    pub pattern: TrafficPattern,
    /// Search window lower bound (Gbps per host).
    pub lo: f64,
    /// Search window upper bound (Gbps per host).
    pub hi: f64,
    /// Bisection tolerance (Gbps).
    pub tol: f64,
    /// Simulation seed.
    pub seed: u64,
}

impl SatProbe {
    /// Saturation load (Gbps per host) of `graph` under adaptive-escape
    /// routing. Deterministic given the probe's seed and config.
    pub fn saturation(&self, graph: Arc<Graph>, par: &Parallelism) -> f64 {
        let vcs = self.cfg.vcs;
        let key = AdaptiveEscape::key_for(vcs);
        let g2 = graph.clone();
        find_saturation_cached(
            graph,
            &self.cfg,
            &self.cache,
            &key,
            move || Arc::new(AdaptiveEscape::new(g2, vcs)),
            &self.pattern,
            self.lo,
            self.hi,
            self.tol,
            self.seed,
            par,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Candidate;

    #[test]
    fn score_matches_standalone_metrics() {
        let c = Candidate::from_dsn(64).unwrap();
        let obj = Objective::aspl_only(Parallelism::serial());
        let s = obj.score(c.graph());
        assert!(s.connected);
        assert!(s.within_budget);
        assert!(s.aspl > 1.0 && s.aspl < 10.0);
        assert!(s.cable_m > 0.0);
        let expected = dsn_metrics::apsp::aspl_with(c.graph(), &Parallelism::serial());
        assert_eq!(s.aspl.to_bits(), expected.to_bits());
    }

    #[test]
    fn budget_penalty_orders_candidates() {
        let obj = Objective::aspl_under_budget(10.0, Parallelism::serial());
        let feasible = Score {
            aspl: 5.0,
            diameter: 8,
            cable_m: 9.0,
            connected: true,
            within_budget: true,
        };
        let cheating = Score {
            aspl: 2.0,
            diameter: 4,
            cable_m: 20.0,
            connected: true,
            within_budget: false,
        };
        assert!(obj.scalar(&feasible) < obj.scalar(&cheating));
        let disconnected = Score {
            connected: false,
            ..feasible
        };
        assert!(obj.scalar(&disconnected) > obj.scalar(&cheating));
        assert!(obj.scalar(&disconnected).is_finite());
    }
}
