//! Search state: a topology with a movable shortcut set.
//!
//! The substrate (ring links, and any other non-shortcut base links) is
//! fixed; only shortcut-class edges move. On a ring substrate this keeps
//! every candidate trivially connected, which the move layer relies on.

use dsn_core::error::Result;
use dsn_core::graph::{EdgeId, Graph, LinkKind, NodeId};
use dsn_core::kleinberg::RingSpanDist;
use dsn_core::ring::Ring;
use dsn_core::Dsn;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A candidate topology: a graph plus the ids of its movable (shortcut)
/// edges. Ring/base links are never rewired.
#[derive(Debug, Clone)]
pub struct Candidate {
    graph: Graph,
    shortcuts: Vec<EdgeId>,
}

impl Candidate {
    /// Wrap a graph, treating every non-[`LinkKind::Ring`] edge as
    /// movable.
    pub fn new(graph: Graph) -> Self {
        let shortcuts = graph
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind != LinkKind::Ring)
            .map(|(i, _)| i)
            .collect();
        Candidate { graph, shortcuts }
    }

    /// The paper's DSN on `n` nodes (shortcut-set size `p - 1`), as the
    /// canonical search start point.
    pub fn from_dsn(n: usize) -> Result<Self> {
        let p = dsn_core::util::ceil_log2(n.max(2));
        Ok(Candidate::new(Dsn::new(n, p - 1)?.into_graph()))
    }

    /// Ring-Kleinberg baseline: a ring of `n` nodes augmented with `q`
    /// long-range contacts per node whose spans follow the `d^-alpha`
    /// law of [`RingSpanDist`] (`alpha = 1` is navigable on a ring).
    /// Contacts deduplicate with a bounded resample, mirroring the grid
    /// Kleinberg builder, so realized degree can fall slightly short.
    pub fn kleinberg_ring(n: usize, q: u32, alpha: f64, seed: u64) -> Result<Self> {
        let mut graph = Ring::new(n)?.into_graph();
        let span = RingSpanDist::new(n, alpha)?;
        let mut rng = SmallRng::seed_from_u64(seed);
        for u in 0..n {
            for _ in 0..q {
                const RESAMPLE: usize = 16;
                for _ in 0..RESAMPLE {
                    let d = span.sample(&mut rng);
                    let v = (u + d) % n;
                    if v != u && graph.add_edge_dedup(u, v, LinkKind::LongRange).is_some() {
                        break;
                    }
                }
            }
        }
        Ok(Candidate::new(graph))
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access for the move layer and for undoing an
    /// [`crate::moves::AppliedMove`]. Callers must restrict themselves to
    /// endpoint retargets: edge ids (and the shortcut id list) must stay
    /// stable.
    #[inline]
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// Consume self and return the graph.
    #[inline]
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Ids of the movable edges.
    #[inline]
    pub fn shortcuts(&self) -> &[EdgeId] {
        &self.shortcuts
    }

    /// Stable 64-bit fingerprint of the topology: FNV-1a over the sorted
    /// normalized `(min, max)` endpoint list. Independent of edge ids,
    /// insertion order, and link kinds, so two searches that reach the
    /// same wiring report the same fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut pairs: Vec<(NodeId, NodeId)> = self
            .graph
            .edges()
            .iter()
            .map(|e| (e.a.min(e.b), e.a.max(e.b)))
            .collect();
        pairs.sort_unstable();
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for (a, b) in pairs {
            for byte in (a as u64)
                .to_le_bytes()
                .into_iter()
                .chain((b as u64).to_le_bytes())
            {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsn_candidate_marks_only_shortcuts() {
        let c = Candidate::from_dsn(64).unwrap();
        let ring_edges = c
            .graph()
            .edges()
            .iter()
            .filter(|e| e.kind == LinkKind::Ring)
            .count();
        assert_eq!(ring_edges, 64);
        assert_eq!(c.shortcuts().len(), c.graph().edge_count() - ring_edges);
        for &id in c.shortcuts() {
            assert_ne!(c.graph().edge(id).kind, LinkKind::Ring);
        }
    }

    #[test]
    fn kleinberg_ring_shape() {
        let c = Candidate::kleinberg_ring(128, 1, 1.0, 7).unwrap();
        let g = c.graph();
        assert!(g.is_connected());
        // ring + up to one contact per node
        assert!(g.edge_count() > 128 + 100, "contacts mostly realized");
        assert!(g.edge_count() <= 256);
        assert_eq!(c.shortcuts().len(), g.edge_count() - 128);
    }

    #[test]
    fn kleinberg_ring_reproducible() {
        let a = Candidate::kleinberg_ring(64, 1, 1.0, 3).unwrap();
        let b = Candidate::kleinberg_ring(64, 1, 1.0, 3).unwrap();
        assert_eq!(a.graph().edges(), b.graph().edges());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_order_not_wiring() {
        let mut g1 = Graph::new(4);
        g1.add_edge(0, 1, LinkKind::Ring);
        g1.add_edge(2, 3, LinkKind::Random);
        let mut g2 = Graph::new(4);
        g2.add_edge(3, 2, LinkKind::Random);
        g2.add_edge(1, 0, LinkKind::Ring);
        assert_eq!(
            Candidate::new(g1).fingerprint(),
            Candidate::new(g2).fingerprint()
        );
        let mut g3 = Graph::new(4);
        g3.add_edge(0, 1, LinkKind::Ring);
        g3.add_edge(1, 3, LinkKind::Random);
        assert_ne!(
            Candidate::new(g3.clone()).fingerprint(),
            Candidate::new({
                let mut g = Graph::new(4);
                g.add_edge(0, 1, LinkKind::Ring);
                g.add_edge(2, 3, LinkKind::Random);
                g
            })
            .fingerprint()
        );
    }
}
