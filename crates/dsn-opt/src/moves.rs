//! Degree-preserving rewiring moves over a candidate's shortcut set.
//!
//! Two proposal kinds:
//!
//! * **Link exchange** — pick two shortcut edges `(a,b)` and `(c,d)` with
//!   four distinct endpoints and swap partners to `(a,c)+(b,d)` or
//!   `(a,d)+(b,c)`. The classic double-edge swap: every node keeps its
//!   degree exactly.
//! * **Span reanchor** — pick a shortcut `(pivot,tail)`, draw a span `d`
//!   from the Kleinberg `d^-alpha` ring law, aim at `v = pivot ± d`, and
//!   *exchange* with a shortcut incident to `v` so the result is
//!   `(pivot,v)` plus the displaced partner — still degree-preserving,
//!   but biased toward a navigable span distribution.
//!
//! A proposal that would create a self-loop or a parallel edge (or cannot
//! find the required partner edge) is rejected: the RNG draws are spent
//! but the graph is untouched. Substrate (ring) links never move, so
//! connectivity is preserved by construction on ring-based candidates.

use crate::candidate::Candidate;
use dsn_core::error::Result;
use dsn_core::graph::{EdgeId, Graph, NodeId};
use dsn_core::kleinberg::RingSpanDist;
use rand::rngs::SmallRng;
use rand::Rng;

/// An applied move: the two endpoint retargets that realized it, in
/// application order. Undo replays them backwards with swapped endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedMove {
    ops: [(EdgeId, NodeId, NodeId); 2],
}

impl AppliedMove {
    /// Revert this move on `g` (must be the graph it was applied to,
    /// with no intervening edits).
    pub fn undo(&self, g: &mut Graph) {
        for &(id, from, to) in self.ops.iter().rev() {
            g.retarget_edge(id, to, from);
        }
    }
}

/// Seedable move proposer with a configurable bias toward span reanchors.
#[derive(Debug, Clone)]
pub struct MoveGen {
    n: usize,
    reanchor_bias: f64,
    span: RingSpanDist,
}

impl MoveGen {
    /// Move generator for an `n`-node ring substrate. `reanchor_bias` in
    /// `[0, 1]` is the probability of proposing a span reanchor instead
    /// of a uniform link exchange; `alpha` parameterizes the reanchor
    /// span law (`1.0` = navigable on a ring).
    pub fn new(n: usize, alpha: f64, reanchor_bias: f64) -> Result<Self> {
        Ok(MoveGen {
            n,
            reanchor_bias: reanchor_bias.clamp(0.0, 1.0),
            span: RingSpanDist::new(n, alpha)?,
        })
    }

    /// Propose and apply one move to `cand`. Returns `None` (graph
    /// untouched) when the draw is rejected. The RNG draw order is fixed
    /// and documented; determinism tests depend on it.
    pub fn propose(&self, cand: &mut Candidate, rng: &mut SmallRng) -> Option<AppliedMove> {
        let m = cand.shortcuts().len();
        if m < 2 {
            return None;
        }
        if rng.gen_bool(self.reanchor_bias) {
            self.propose_reanchor(cand, rng)
        } else {
            self.propose_exchange(cand, rng)
        }
    }

    /// Uniform double-edge swap.
    fn propose_exchange(&self, cand: &mut Candidate, rng: &mut SmallRng) -> Option<AppliedMove> {
        let m = cand.shortcuts().len();
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        let orient = rng.gen_bool(0.5);
        if i == j {
            return None;
        }
        let e1 = cand.shortcuts()[i];
        let e2 = cand.shortcuts()[j];
        let (a, b) = endpoints(cand.graph(), e1);
        let (c, d) = endpoints(cand.graph(), e2);
        if a == c || a == d || b == c || b == d {
            return None;
        }
        // (a,b)+(c,d) -> (a,c)+(b,d)  or  (a,d)+(c,b)
        let (t1, f2, t2) = if orient { (c, c, b) } else { (d, d, b) };
        let g = cand.graph();
        if g.has_edge(a, t1) || g.has_edge(b, if orient { d } else { c }) {
            return None;
        }
        let g = cand.graph_mut();
        g.retarget_edge(e1, b, t1);
        g.retarget_edge(e2, f2, t2);
        Some(AppliedMove {
            ops: [(e1, b, t1), (e2, f2, t2)],
        })
    }

    /// Kleinberg-biased reanchor-by-exchange.
    fn propose_reanchor(&self, cand: &mut Candidate, rng: &mut SmallRng) -> Option<AppliedMove> {
        let m = cand.shortcuts().len();
        let i = rng.gen_range(0..m);
        let e = cand.shortcuts()[i];
        let (x, y) = endpoints(cand.graph(), e);
        let (pivot, tail) = if rng.gen_bool(0.5) { (x, y) } else { (y, x) };
        let d = self.span.sample(rng);
        let v = if rng.gen_bool(0.5) {
            (pivot + d) % self.n
        } else {
            (pivot + self.n - d) % self.n
        };
        if v == pivot || v == tail {
            return None;
        }
        // Partner: a shortcut incident to v (other than e) to displace.
        let incident: Vec<EdgeId> = cand
            .shortcuts()
            .iter()
            .copied()
            .filter(|&f| {
                let (p, q) = endpoints(cand.graph(), f);
                f != e && (p == v || q == v)
            })
            .collect();
        if incident.is_empty() {
            return None;
        }
        let f = incident[rng.gen_range(0..incident.len())];
        let (p, q) = endpoints(cand.graph(), f);
        let w = if p == v { q } else { p };
        // e: (pivot,tail) -> (pivot,v);  f: (v,w) -> (tail,w)
        if w == tail {
            return None; // f would become a self-loop
        }
        let g = cand.graph();
        if g.has_edge(pivot, v) || g.has_edge(tail, w) {
            return None;
        }
        let g = cand.graph_mut();
        g.retarget_edge(e, tail, v);
        g.retarget_edge(f, v, tail);
        Some(AppliedMove {
            ops: [(e, tail, v), (f, v, tail)],
        })
    }
}

#[inline]
fn endpoints(g: &Graph, id: EdgeId) -> (NodeId, NodeId) {
    let e = g.edge(id);
    (e.a, e.b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn degree_hist(c: &Candidate) -> Vec<usize> {
        c.graph().degree_histogram()
    }

    #[test]
    fn moves_preserve_degrees_and_connectivity() {
        let mut c = Candidate::from_dsn(64).unwrap();
        let before = degree_hist(&c);
        let gen = MoveGen::new(64, 1.0, 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut applied = 0;
        for _ in 0..400 {
            if gen.propose(&mut c, &mut rng).is_some() {
                applied += 1;
            }
        }
        assert!(applied > 50, "only {applied} moves applied");
        assert_eq!(degree_hist(&c), before, "degree multiset changed");
        assert!(c.graph().is_connected());
        // no parallel edges introduced
        let g = c.graph();
        for (i, e) in g.edges().iter().enumerate() {
            let dup = g
                .edges()
                .iter()
                .enumerate()
                .any(|(j, f)| j != i && ((f.a, f.b) == (e.a, e.b) || (f.a, f.b) == (e.b, e.a)));
            assert!(!dup, "parallel edge {e:?}");
        }
    }

    #[test]
    fn undo_restores_exact_wiring() {
        let mut c = Candidate::from_dsn(32).unwrap();
        let before = c.graph().edges().to_vec();
        let fp = c.fingerprint();
        let gen = MoveGen::new(32, 1.0, 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut undone = 0;
        for _ in 0..200 {
            if let Some(mv) = gen.propose(&mut c, &mut rng) {
                mv.undo(c.graph_mut());
                undone += 1;
                assert_eq!(c.graph().edges(), &before[..]);
            }
        }
        assert!(undone > 20);
        assert_eq!(c.fingerprint(), fp);
    }

    #[test]
    fn reanchor_only_still_degree_preserving() {
        let mut c = Candidate::kleinberg_ring(96, 1, 1.0, 2).unwrap();
        let before = degree_hist(&c);
        let gen = MoveGen::new(96, 1.0, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(19);
        let mut applied = 0;
        for _ in 0..300 {
            if gen.propose(&mut c, &mut rng).is_some() {
                applied += 1;
            }
        }
        assert!(applied > 20, "only {applied} reanchors applied");
        assert_eq!(degree_hist(&c), before);
        assert!(c.graph().is_connected());
    }

    #[test]
    fn too_few_shortcuts_rejects() {
        let g = dsn_core::ring::Ring::new(16).unwrap().into_graph();
        let mut c = Candidate::new(g);
        assert!(c.shortcuts().is_empty());
        let gen = MoveGen::new(16, 1.0, 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(gen.propose(&mut c, &mut rng).is_none());
    }
}
