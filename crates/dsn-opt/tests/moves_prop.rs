//! Property tests for the rewiring moves: every applied move preserves
//! the degree multiset, keeps the graph connected and simple (no
//! self-loops, no parallel edges), and never touches a substrate ring
//! link; rejected proposals leave the graph byte-identical.

use dsn_core::graph::LinkKind;
use dsn_opt::{Candidate, MoveGen};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn simple(c: &Candidate) -> bool {
    let g = c.graph();
    let mut pairs: Vec<(usize, usize)> = g
        .edges()
        .iter()
        .map(|e| (e.a.min(e.b), e.a.max(e.b)))
        .collect();
    pairs.sort_unstable();
    pairs.windows(2).all(|w| w[0] != w[1]) && g.edges().iter().all(|e| e.a != e.b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn moves_preserve_invariants(
        n in prop_oneof![Just(32usize), Just(48), Just(64), Just(100)],
        seed in 0u64..1_000,
        bias in prop_oneof![Just(0.0f64), Just(0.5), Just(1.0)],
        start_kind in prop_oneof![Just(0u8), Just(1)],
        steps in 1usize..120,
    ) {
        let mut c = match start_kind {
            0 => Candidate::from_dsn(n).unwrap(),
            _ => Candidate::kleinberg_ring(n, 1, 1.0, seed ^ 0x5eed).unwrap(),
        };
        let degrees_before = c.graph().degree_histogram();
        let edge_count_before = c.graph().edge_count();
        let ring_before: Vec<_> = c
            .graph()
            .edges()
            .iter()
            .filter(|e| e.kind == LinkKind::Ring)
            .cloned()
            .collect();
        prop_assume!(simple(&c));

        let gen = MoveGen::new(n, 1.0, bias).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..steps {
            let before = c.graph().edges().to_vec();
            let applied = gen.propose(&mut c, &mut rng);
            if applied.is_none() {
                prop_assert_eq!(c.graph().edges(), &before[..],
                    "rejected move must not touch the graph");
            }
            prop_assert!(simple(&c), "self-loop or parallel edge introduced");
        }

        prop_assert_eq!(c.graph().degree_histogram(), degrees_before,
            "degree multiset changed");
        prop_assert_eq!(c.graph().edge_count(), edge_count_before);
        prop_assert!(c.graph().is_connected(), "graph disconnected");
        let ring_after: Vec<_> = c
            .graph()
            .edges()
            .iter()
            .filter(|e| e.kind == LinkKind::Ring)
            .cloned()
            .collect();
        prop_assert_eq!(ring_after, ring_before, "substrate ring link moved");
    }

    #[test]
    fn undo_is_exact_inverse(
        n in prop_oneof![Just(32usize), Just(64)],
        seed in 0u64..500,
    ) {
        let mut c = Candidate::from_dsn(n).unwrap();
        let gen = MoveGen::new(n, 1.0, 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..40 {
            let before = c.graph().edges().to_vec();
            if let Some(mv) = gen.propose(&mut c, &mut rng) {
                mv.undo(c.graph_mut());
                prop_assert_eq!(c.graph().edges(), &before[..], "undo not exact");
                // re-apply so later iterations explore fresh states
                let _ = gen.propose(&mut c, &mut rng);
            }
        }
    }
}
