//! Bit-reproducibility contract: identical seed + config give a
//! byte-identical best candidate and search trace no matter which
//! `Parallelism` policy evaluates the candidates.

use dsn_core::Parallelism;
use dsn_opt::{anneal_shortcuts, evolve, Candidate, EsConfig, Objective, SaConfig, SearchResult};

fn assert_identical(a: &SearchResult, b: &SearchResult, label: &str) {
    assert_eq!(
        a.best.fingerprint(),
        b.best.fingerprint(),
        "{label}: best fingerprint diverged"
    );
    assert_eq!(
        a.best.graph().edges(),
        b.best.graph().edges(),
        "{label}: best edge list diverged"
    );
    assert_eq!(
        a.best_scalar.to_bits(),
        b.best_scalar.to_bits(),
        "{label}: best scalar bits diverged"
    );
    assert_eq!(a.trace, b.trace, "{label}: search trace diverged");
    assert_eq!(a.evaluations, b.evaluations, "{label}: evaluation count");
}

#[test]
fn sa_identical_serial_vs_four_workers() {
    let start = Candidate::from_dsn(64).unwrap();
    let cfg = SaConfig {
        iterations: 150,
        seed: 0xA11CE,
        ..SaConfig::default()
    };
    let serial = anneal_shortcuts(&start, &Objective::aspl_only(Parallelism::serial()), &cfg);
    let par = anneal_shortcuts(&start, &Objective::aspl_only(Parallelism::threads(4)), &cfg);
    assert_identical(&serial, &par, "sa");
    assert!(!serial.trace.is_empty());
}

#[test]
fn es_identical_serial_vs_four_workers() {
    let start = Candidate::from_dsn(64).unwrap();
    let cfg = EsConfig {
        generations: 8,
        seed: 0xB0B,
        ..EsConfig::default()
    };
    let serial = evolve(&start, &Objective::aspl_only(Parallelism::serial()), &cfg);
    let par = evolve(&start, &Objective::aspl_only(Parallelism::threads(4)), &cfg);
    assert_identical(&serial, &par, "es");
    assert_eq!(serial.trace.len(), 8);
}

#[test]
fn same_seed_same_run_different_seed_diverges() {
    let start = Candidate::from_dsn(64).unwrap();
    let obj = Objective::aspl_only(Parallelism::serial());
    let cfg = SaConfig {
        iterations: 120,
        seed: 1,
        ..SaConfig::default()
    };
    let a = anneal_shortcuts(&start, &obj, &cfg);
    let b = anneal_shortcuts(&start, &obj, &cfg);
    assert_identical(&a, &b, "repeat");
    let other = anneal_shortcuts(
        &start,
        &obj,
        &SaConfig {
            seed: 2,
            ..cfg.clone()
        },
    );
    assert_ne!(a.trace, other.trace, "different seeds should diverge");
}

#[test]
fn es_identical_under_budget_objective() {
    let start = Candidate::kleinberg_ring(64, 1, 1.0, 9).unwrap();
    let budget = Objective::aspl_only(Parallelism::serial())
        .score(start.graph())
        .cable_m;
    let cfg = EsConfig {
        generations: 6,
        seed: 0xFEED,
        ..EsConfig::default()
    };
    let serial = evolve(
        &start,
        &Objective::aspl_under_budget(budget, Parallelism::serial()),
        &cfg,
    );
    let par = evolve(
        &start,
        &Objective::aspl_under_budget(budget, Parallelism::threads(4)),
        &cfg,
    );
    assert_identical(&serial, &par, "es-budget");
    assert!(serial.best_score.within_budget);
}
