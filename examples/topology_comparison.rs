//! Compare DSN against the paper's baselines — and the wider related-work
//! families — on hop metrics, degree, and small-world structure.
//!
//! Run: `cargo run --release --example topology_comparison [n]`

use dsn::core::topology::TopologySpec;
use dsn::metrics::clustering::{avg_clustering, small_world_sigma};
use dsn::metrics::{path_stats, TopologyReport};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let p = dsn::core::util::ceil_log2(n);

    println!("Topology comparison at N = {n}\n");
    println!("{}", TopologyReport::header());
    let specs = vec![
        TopologySpec::Dsn { n, x: p - 1 },
        TopologySpec::DsnE { n },
        TopologySpec::DsnD { n, x: 2 },
        TopologySpec::Torus2D { n },
        TopologySpec::DlnRandom {
            n,
            x: 2,
            y: 2,
            seed: 0xD5B0_2013,
        },
        TopologySpec::RandomRegular {
            n,
            d: 4,
            seed: 0xD5B0_2013,
        },
        TopologySpec::Dln { n, x: p + 1 },
        TopologySpec::Ring { n },
    ];
    let mut reports = Vec::new();
    for spec in specs {
        match spec.build() {
            Ok(built) => {
                let r = TopologyReport::new(built.name, &built.graph);
                println!("{}", r.row());
                reports.push((r, built.graph));
            }
            Err(e) => println!("  (skipped {spec:?}: {e})"),
        }
    }

    println!("\nSmall-world structure (Watts–Strogatz):");
    println!("  {:<24} {:>10} {:>10}", "topology", "clustering", "sigma");
    for (r, g) in &reports {
        let c = avg_clustering(g);
        let sigma = small_world_sigma(g, r.paths.aspl);
        println!("  {:<24} {:>10.4} {:>10.2}", r.name, c, sigma);
    }

    // Distance distribution of DSN vs torus: the small-world effect shows
    // up as probability mass at low hop counts.
    println!("\nHop-distance CDF (fraction of pairs within d hops):");
    let dsn = TopologySpec::Dsn { n, x: p - 1 }.build().unwrap();
    let torus = TopologySpec::Torus2D { n }.build().unwrap();
    let sd = path_stats(&dsn.graph);
    let st = path_stats(&torus.graph);
    println!("  {:>4} {:>8} {:>8}", "d", "dsn", "torus");
    for d in 1..=st.diameter.max(sd.diameter) {
        println!("  {:>4} {:>8.3} {:>8.3}", d, sd.cdf_at(d), st.cdf_at(d));
    }
}
