//! Dissect where a packet's nanoseconds go: source queueing vs network
//! transit, per topology and load, using the simulator's packet tracer.
//! Shows *why* DSN beats the torus at low load (fewer hops, same per-hop
//! pipeline) and what saturation onset looks like (queueing explodes,
//! transit barely moves).
//!
//! Run: `cargo run --release --example latency_anatomy`

use dsn::core::topology::TopologySpec;
use dsn::sim::{AdaptiveEscape, SimConfig, Simulator, TrafficPattern};
use std::sync::Arc;

fn main() {
    let cfg = SimConfig {
        warmup_cycles: 3_000,
        measure_cycles: 8_000,
        drain_cycles: 8_000,
        ..SimConfig::default()
    };

    println!("Latency anatomy (mean over traced packets, in ns)");
    println!(
        "  {:<14} {:>6} {:>10} {:>10} {:>10}",
        "topology", "load", "queueing", "transit", "total"
    );
    for spec in TopologySpec::paper_trio(64, 0xD5B0_2013) {
        let built = spec.build().expect("topology");
        let graph = Arc::new(built.graph);
        for gbps in [2.0, 10.0] {
            let routing = Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs));
            let rate = cfg.packets_per_cycle_for_gbps(gbps);
            let sim = Simulator::new(
                graph.clone(),
                cfg.clone(),
                routing,
                TrafficPattern::Uniform,
                rate,
                42,
            )
            .with_tracer(16); // every 16th packet
            let (_stats, trace) = sim.run_traced();

            let mut q_sum = 0u64;
            let mut t_sum = 0u64;
            let mut count = 0u64;
            // Scan traced packets by scanning delivered events.
            for &(_, p, e) in trace.records() {
                if matches!(e, dsn::sim::TraceEvent::Delivered { .. }) {
                    if let Some((q, t, _)) = trace.latency_breakdown(p) {
                        q_sum += q;
                        t_sum += t;
                        count += 1;
                    }
                }
            }
            if count == 0 {
                continue;
            }
            let q_ns = q_sum as f64 / count as f64 * cfg.cycle_ns;
            let t_ns = t_sum as f64 / count as f64 * cfg.cycle_ns;
            println!(
                "  {:<14} {:>5.0}G {:>10.0} {:>10.0} {:>10.0}",
                built.name,
                gbps,
                q_ns,
                t_ns,
                q_ns + t_ns
            );
        }
    }
    println!(
        "\n(queueing = injection to first VC grant at the source switch;\n \
         transit = everything after, including per-hop pipelines and\n \
         serialization; traced every 16th packet)"
    );
}
