//! Deadlock analysis walkthrough (Section V.A / Theorem 3): build channel
//! dependency graphs for the basic, DSN-V, and DSN-E routing schemes and
//! show where cycles live and how virtual channels remove them.
//!
//! Run: `cargo run --release --example deadlock_analysis [n]`

use dsn::core::dsn::Dsn;
use dsn::core::dsn_ext::DsnE;
use dsn::route::deadlock::{basic_cdg, dsne_cdg, dsne_group_dependencies, dsnv_cdg};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);
    let p = dsn::core::util::ceil_log2(n);
    if !n.is_multiple_of(p as usize) {
        eprintln!(
            "note: n = {n} is not a multiple of p = {p}; deadlock freedom is \
             only guaranteed for complete super nodes"
        );
    }
    let dsn = Dsn::new(n, p - 1).expect("dsn");

    println!("1. Basic three-phase routing on a single virtual channel:");
    let cdg = basic_cdg(&dsn);
    match cdg.find_cycle() {
        Some(cycle) => println!(
            "   CYCLIC — {} channels, {} dependencies; one cycle of length {}: {:?}",
            cdg.channel_count(),
            cdg.dependency_count(),
            cycle.len(),
            &cycle[..cycle.len().min(8)]
        ),
        None => println!("   acyclic (unexpected!)"),
    }

    println!("\n2. DSN-V: same paths, 4-VC discipline (PRE-WORK / MAIN / FINISH / dateline):");
    let cdg = dsnv_cdg(&dsn);
    println!(
        "   {} channels, {} dependencies, acyclic = {} (Theorem 3)",
        cdg.channel_count(),
        cdg.dependency_count(),
        cdg.is_acyclic()
    );

    println!("\n3. DSN-E: physical Up/Extra links, single VC:");
    let dsne = DsnE::new(n).expect("dsne");
    let deps = dsne_group_dependencies(&dsne);
    println!("   group-level dependencies (0=Up, 1=Succ+Shortcut, 2=Pred+Extra): {deps:?}");
    println!(
        "   all inter-group dependencies point forward: {} (the paper's Figure 6 argument)",
        deps.iter().all(|&(a, b)| a < b)
    );
    let fine = dsne_cdg(&dsne);
    match fine.find_cycle() {
        Some(cycle) => println!(
            "   fine-grained channel CDG: CYCLIC (length {}) — reproduction finding:\n   \
             the group argument does not extend to channel granularity; a cycle\n   \
             closes through position-wrapping shortcuts bridged by forward-FINISH\n   \
             hops. Use DSN-V (virtual channels) for a machine-checked guarantee.",
            cycle.len()
        ),
        None => println!("   fine-grained channel CDG: acyclic"),
    }
}
