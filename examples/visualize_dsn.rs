//! Text-mode visualization of a small DSN: the ring with per-node levels,
//! each node's shortcut span, and a traced route — the content of the
//! paper's Figures 1 and 2 on the terminal.
//!
//! Run: `cargo run --release --example visualize_dsn [n] [x]`

use dsn::core::dsn::Dsn;
use dsn::route::dsn_routing::{route, RoutePhase, RouteStep};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let p_default = dsn::core::util::ceil_log2(n).saturating_sub(1).max(1);
    let x: u32 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(p_default);
    let dsn = match Dsn::new(n, x) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot build DSN-{x}-{n}: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "DSN-{x}-{n}: p = {}, r = {} (Figure 1 structure)\n",
        dsn.p(),
        dsn.r()
    );

    // Level strip: one row per level, '#' marks nodes of that level,
    // annotated with the shortcut span from the first such node.
    println!("levels (one column per node id 0..{}):", n - 1);
    for level in 1..=dsn.p() {
        let mut row = String::with_capacity(n);
        for v in 0..n {
            row.push(if dsn.level(v) == level { '#' } else { '.' });
        }
        let owner = (0..n).find(|&v| dsn.level(v) == level && dsn.shortcut(v).is_some());
        let note = match owner {
            Some(v) => format!(
                "level {level}: shortcut span >= {} (e.g. {v} -> {})",
                n.div_ceil(1 << level),
                dsn.shortcut(v).unwrap()
            ),
            None => format!("level {level}: no shortcut (level > x)"),
        };
        println!("  {row}  {note}");
    }

    // Shortcut arc diagram for the first super node.
    println!("\nshortcut arcs out of super node 0:");
    for v in 0..dsn.p() as usize {
        if let Some(t) = dsn.shortcut(v) {
            let span = dsn.cw_dist(v, t);
            let bar = "-".repeat((span * 40 / n).max(1));
            println!(
                "  {v:>3} ({:>2}) {bar}> {t:<3} span {span}",
                format!("l{}", dsn.level(v))
            );
        }
    }

    // Trace one route end to end.
    let (s, t) = (1usize, n * 5 / 8);
    let tr = route(&dsn, s, t).expect("route");
    println!(
        "\nroute {s} -> {t} ({} hops, Figure 2 algorithm):",
        tr.hops()
    );
    for (i, &step) in tr.steps.iter().enumerate() {
        let phase = match tr.phases[i] {
            RoutePhase::PreWork => "PRE-WORK",
            RoutePhase::Main => "MAIN    ",
            RoutePhase::Finish => "FINISH  ",
        };
        let arrow = match step {
            RouteStep::Succ => "succ",
            RouteStep::Pred => "pred",
            RouteStep::Shortcut => "SHORTCUT",
        };
        println!(
            "  {phase}  {:>4} --{arrow:>8}--> {:<4} (level {} -> {}, dist to t: {})",
            tr.path[i],
            tr.path[i + 1],
            dsn.level(tr.path[i]),
            dsn.level(tr.path[i + 1]),
            dsn.cw_dist(tr.path[i + 1], t)
        );
    }
}
