//! Fault-tolerance study: path diversity, edge connectivity, bisection
//! width, and behavior under random link failures — the resilience angle
//! the paper's related work (Jellyfish, small-world datacenters) leads
//! with.
//!
//! Run: `cargo run --release --example fault_tolerance [n]`

use dsn::core::topology::TopologySpec;
use dsn::metrics::{edge_connectivity, estimate_bisection, path_diversity_histogram, path_stats};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);

    println!("Fault tolerance at N = {n}\n");
    println!(
        "  {:<18} {:>8} {:>10} {:>22}",
        "topology", "edge-conn", "bisection", "disjoint-path histogram"
    );
    let mut graphs = Vec::new();
    for spec in TopologySpec::paper_trio(n, 0xD5B0_2013) {
        let built = spec.build().expect("topology");
        let conn = edge_connectivity(&built.graph);
        let bis = estimate_bisection(&built.graph, 3, 7).width;
        let hist = path_diversity_histogram(&built.graph, 64);
        println!(
            "  {:<18} {:>8} {:>10} {:>22}",
            built.name,
            conn,
            bis,
            format!("{hist:?}")
        );
        graphs.push(built);
    }

    // Degrade each topology by failing random links and watch ASPL /
    // connectivity. DSN and RANDOM keep functioning; the torus fragments
    // its performance more gracefully in hops but loses its regularity.
    println!("\nRandom link failures (fractions of links removed; '—' = disconnected):");
    println!(
        "  {:<18} {:>10} {:>10} {:>10} {:>10}",
        "topology", "0%", "2%", "5%", "10%"
    );
    let mut rng = SmallRng::seed_from_u64(99);
    for built in &graphs {
        let m = built.graph.edge_count();
        let mut row = format!("  {:<18}", built.name);
        for frac in [0.0f64, 0.02, 0.05, 0.10] {
            let kill = (m as f64 * frac) as usize;
            let mut ids: Vec<usize> = (0..m).collect();
            ids.shuffle(&mut rng);
            let g = built.graph.without_edges(&ids[..kill]);
            if g.is_connected() {
                let s = path_stats(&g);
                row.push_str(&format!(" {:>10.3}", s.aspl));
            } else {
                row.push_str(&format!(" {:>10}", "—"));
            }
        }
        println!("{row}");
    }
    println!("\n(values are ASPL after failing that fraction of links)");
}
