//! Drive the cycle-level simulator on a small network: compare DSN, torus
//! and RANDOM under one traffic pattern and a few load points, and compare
//! the topology-agnostic adaptive routing against DSN's custom routing
//! (the Section VII.B discussion).
//!
//! Run: `cargo run --release --example simulate_traffic [uniform|bitrev|neighbor]`

use dsn::core::dsn::Dsn;
use dsn::core::topology::TopologySpec;
use dsn::sim::sweep::{format_sweep, load_sweep};
use dsn::sim::{AdaptiveEscape, SimConfig, SourceRouted, TrafficPattern};
use std::sync::Arc;

fn main() {
    let pattern = match std::env::args().nth(1).as_deref() {
        Some("bitrev") => TrafficPattern::BitReversal,
        Some("neighbor") => TrafficPattern::neighboring_paper(),
        _ => TrafficPattern::Uniform,
    };

    // Shortened windows keep this example interactive (~seconds).
    let cfg = SimConfig {
        warmup_cycles: 5_000,
        measure_cycles: 15_000,
        drain_cycles: 15_000,
        ..SimConfig::default()
    };
    let loads = [1.0, 4.0, 8.0, 11.0];

    println!(
        "=== topology comparison, {} traffic, adaptive + up*/down* escape ===\n",
        pattern.name()
    );
    for spec in TopologySpec::paper_trio(64, 0xD5B0_2013) {
        let built = spec.build().expect("topology");
        let graph = Arc::new(built.graph);
        let vcs = cfg.vcs;
        let g2 = graph.clone();
        let sweep = load_sweep(
            built.name,
            graph,
            &cfg,
            move || Arc::new(AdaptiveEscape::new(g2.clone(), vcs)),
            &pattern,
            &loads,
            1,
        );
        println!("{}", format_sweep(&sweep));
    }

    println!("=== routing comparison on DSN-5-64: agnostic vs custom ===\n");
    let dsn = Arc::new(Dsn::new(64, 5).expect("dsn"));
    let graph = Arc::new(dsn.graph().clone());
    let vcs = cfg.vcs;
    let g2 = graph.clone();
    let agnostic = load_sweep(
        "DSN-5-64 / adaptive",
        graph.clone(),
        &cfg,
        move || Arc::new(AdaptiveEscape::new(g2.clone(), vcs)),
        &pattern,
        &loads,
        2,
    );
    println!("{}", format_sweep(&agnostic));
    let dsn2 = dsn.clone();
    let custom = load_sweep(
        "DSN-5-64 / custom (3-phase, DSN-V VCs)",
        graph,
        &cfg,
        move || Arc::new(SourceRouted::dsn_custom(dsn2.clone())),
        &pattern,
        &loads,
        2,
    );
    println!("{}", format_sweep(&custom));
}
