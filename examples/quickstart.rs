//! Quickstart: build a DSN, inspect its structure, route a packet with the
//! paper's custom algorithm, and analyze the graph.
//!
//! Run: `cargo run --release --example quickstart`

use dsn::core::dsn::Dsn;
use dsn::metrics::path_stats;
use dsn::route::dsn_routing::{route, RoutePhase};

fn main() {
    // DSN-9-1020: 1020 switches (a multiple of p = 10, so every super node
    // is complete), with the maximum shortcut set x = p - 1 = 9.
    let dsn = Dsn::new_clean(1024).expect("valid parameters");
    println!(
        "built DSN-{}-{}: p = {}, r = {}, {} links",
        dsn.x(),
        dsn.n(),
        dsn.p(),
        dsn.r(),
        dsn.graph().edge_count()
    );

    // Fact 1: almost constant degree.
    let hist = dsn.graph().degree_histogram();
    println!(
        "degrees: min {}, avg {:.2}, max {} (histogram {:?})",
        dsn.graph().min_degree(),
        dsn.graph().avg_degree(),
        dsn.graph().max_degree(),
        hist
    );

    // Each node of level l <= x owns a shortcut to the clockwise-nearest
    // node of level l+1 at distance >= n / 2^l.
    for v in [0usize, 1, 2, 500] {
        match dsn.shortcut(v) {
            Some(t) => println!(
                "node {v:>4} (level {}) -> shortcut to {t:>4} (level {}), span {}",
                dsn.level(v),
                dsn.level(t),
                dsn.cw_dist(v, t)
            ),
            None => println!("node {v:>4} (level {}) has no shortcut", dsn.level(v)),
        }
    }

    // Route with the paper's three-phase algorithm.
    let (s, t) = (3usize, 777usize);
    let trace = route(&dsn, s, t).expect("routing succeeds");
    println!(
        "\nroute {s} -> {t}: {} hops ({} pre-work, {} main, {} finish), overshoot = {}",
        trace.hops(),
        trace.hops_in(RoutePhase::PreWork),
        trace.hops_in(RoutePhase::Main),
        trace.hops_in(RoutePhase::Finish),
        trace.overshoot
    );
    println!("path: {:?}", trace.path);
    let bound = 3 * dsn.p() as usize + dsn.r();
    assert!(
        trace.hops() <= bound,
        "Fact 2: route within 3p + r = {bound}"
    );

    // Graph analysis (the quantities of Figures 7 and 8).
    let stats = path_stats(dsn.graph());
    println!(
        "\ndiameter = {} (bound 2.5p + r = {:.1}), aspl = {:.3} (bound 1.5p = {})",
        stats.diameter,
        2.5 * dsn.p() as f64 + dsn.r() as f64,
        stats.aspl,
        1.5 * dsn.p() as f64
    );
}
