//! The low-radix vs high-radix trade-off from the paper's introduction:
//! DSN and tori keep per-switch link counts at 4–6 (cheap switches, simple
//! integration, short cables) while flattened butterfly and dragonfly buy
//! 2–3-hop diameters with radix-20+ switches and a much larger cable bill.
//!
//! Run: `cargo run --release --example radix_tradeoff`

use dsn::core::highradix::{Dragonfly, FlattenedButterfly};
use dsn::core::topology::TopologySpec;
use dsn::layout::{cable_stats, CableModel, LinearPlacement};
use dsn::metrics::{moore_efficiency, TopologyReport};

fn main() {
    println!("Low-radix vs high-radix at ~500 switches\n");
    println!(
        "{} {:>9} {:>7}",
        TopologyReport::header(),
        "cable[m]",
        "moore"
    );

    let mut rows: Vec<(String, dsn::core::Graph)> = Vec::new();
    for spec in [
        TopologySpec::Dsn { n: 512, x: 8 },
        TopologySpec::Torus2D { n: 512 },
        TopologySpec::Torus3D { n: 512 },
        TopologySpec::DlnRandom {
            n: 512,
            x: 2,
            y: 2,
            seed: 0xD5B0_2013,
        },
    ] {
        let b = spec.build().expect("topology");
        rows.push((b.name, b.graph));
    }
    rows.push((
        "FlatButterfly-8ary4".into(),
        FlattenedButterfly::new(8, 4).expect("fb").into_graph(),
    ));
    // a = 8, h = 1: 9 groups of 8 = 72... use a = 7, h = 3: 22 groups x 7
    // = 154; a = 10, h = 2: 21 groups x 10 = 210; a = 8, h = 4: 33 x 8 =
    // 264; a = 11, h = 4: 45 x 11 = 495 — closest to 512.
    rows.push((
        "Dragonfly-a11h4".into(),
        Dragonfly::new(11, 4).expect("df").into_graph(),
    ));

    let model = CableModel::default();
    for (name, g) in &rows {
        let report = TopologyReport::new(name.clone(), g);
        let placement = LinearPlacement::new(g.node_count(), model.switches_per_cabinet);
        let cable = cable_stats(g, &placement, &model);
        let moore = moore_efficiency(g, report.paths.diameter);
        println!("{} {:>9.2} {:>7.4}", report.row(), cable.avg_m, moore);
    }

    println!(
        "\nReading: the high-radix designs reach diameter 2-3 but need radix-15+\n\
         switches and 2-4x the average cable length under the same cabinet\n\
         layout; DSN holds radix <= 5 with a logarithmic diameter — the paper's\n\
         low-radix design point (Section I). The 'moore' column is n divided by\n\
         the Moore bound for each topology's (max degree, diameter)."
    );
}
