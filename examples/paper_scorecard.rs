//! One-command reproduction scorecard: runs a miniature of every check in
//! the paper (graph analysis, layout, theory bounds, deadlock freedom, and
//! a short simulation) and prints pass/fail per claim. The full-scale
//! versions live in `dsn-bench` (see EXPERIMENTS.md).
//!
//! Run: `cargo run --release --example paper_scorecard`

use dsn::core::dsn::Dsn;
use dsn::core::topology::TopologySpec;
use dsn::layout::{cable_stats, CableModel, LinearPlacement};
use dsn::metrics::path_stats;
use dsn::route::deadlock::{basic_cdg, dsnv_cdg};
use dsn::route::routing_stats;
use dsn::sim::{AdaptiveEscape, SimConfig, Simulator, TrafficPattern};
use std::sync::Arc;

struct Scorecard {
    passed: usize,
    failed: usize,
}

impl Scorecard {
    fn check(&mut self, claim: &str, ok: bool, detail: String) {
        if ok {
            self.passed += 1;
            println!("  ✓ {claim:<58} {detail}");
        } else {
            self.failed += 1;
            println!("  ✗ {claim:<58} {detail}");
        }
    }
}

fn main() {
    let mut card = Scorecard {
        passed: 0,
        failed: 0,
    };
    let seed = 0xD5B0_2013;
    println!("DSN (ICPP 2013) reproduction scorecard\n");

    // --- Graph claims at N = 256 ---
    let n = 256;
    let [dsn_spec, torus_spec, random_spec] = TopologySpec::paper_trio(n, seed);
    let g_dsn = dsn_spec.build().unwrap().graph;
    let g_torus = torus_spec.build().unwrap().graph;
    let g_random = random_spec.build().unwrap().graph;
    let s_dsn = path_stats(&g_dsn);
    let s_torus = path_stats(&g_torus);
    let s_random = path_stats(&g_random);

    card.check(
        "Fact 1: DSN degrees in {2..5}, avg <= 4",
        g_dsn.min_degree() >= 2 && g_dsn.max_degree() <= 5 && g_dsn.avg_degree() <= 4.0,
        format!(
            "degrees {}..{}, avg {:.2}",
            g_dsn.min_degree(),
            g_dsn.max_degree(),
            g_dsn.avg_degree()
        ),
    );
    card.check(
        "Fig 7: diameter DSN < torus, near RANDOM",
        s_dsn.diameter < s_torus.diameter && s_dsn.diameter <= 2 * s_random.diameter,
        format!(
            "{} vs torus {} vs random {}",
            s_dsn.diameter, s_torus.diameter, s_random.diameter
        ),
    );
    card.check(
        "Fig 8: ASPL DSN < torus",
        s_dsn.aspl < s_torus.aspl,
        format!("{:.2} vs {:.2}", s_dsn.aspl, s_torus.aspl),
    );

    // --- Layout (Fig 9) ---
    let model = CableModel::default();
    let placement = LinearPlacement::new(n, model.switches_per_cabinet);
    let c_dsn = cable_stats(&g_dsn, &placement, &model).avg_m;
    let c_torus = cable_stats(&g_torus, &placement, &model).avg_m;
    let c_random = cable_stats(&g_random, &placement, &model).avg_m;
    card.check(
        "Fig 9: cable DSN < RANDOM and near torus",
        c_dsn < c_random && c_dsn <= 1.35 * c_torus,
        format!("{c_dsn:.2} m vs random {c_random:.2} m, torus {c_torus:.2} m"),
    );

    // --- Theory bounds on a clean instance ---
    let clean = Dsn::new_clean(256).unwrap();
    let p = clean.p();
    let cs = path_stats(clean.graph());
    let rs = routing_stats(&clean);
    card.check(
        "Thm 1b: diameter <= 2.5p + r",
        (cs.diameter as f64) <= 2.5 * p as f64 + clean.r() as f64,
        format!(
            "{} <= {:.1}",
            cs.diameter,
            2.5 * p as f64 + clean.r() as f64
        ),
    );
    card.check(
        "Thm 1c: routing diameter <= 3p + r",
        rs.max_hops <= 3 * p as usize + clean.r(),
        format!("{} <= {}", rs.max_hops, 3 * p as usize + clean.r()),
    );
    card.check(
        "Thm 2a: E[route] <= 2p",
        rs.avg_hops <= 2.0 * p as f64,
        format!("{:.2} <= {}", rs.avg_hops, 2 * p),
    );

    // --- Deadlock freedom (Thm 3) ---
    let small = Dsn::new(60, 5).unwrap();
    card.check(
        "Thm 3: DSN-V CDG acyclic (basic single-VC is cyclic)",
        dsnv_cdg(&small).is_acyclic() && basic_cdg(&small).find_cycle().is_some(),
        "machine-checked over all 3540 routes".into(),
    );

    // --- Simulation (Fig 10, shortened) ---
    let cfg = SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: 6_000,
        drain_cycles: 6_000,
        ..SimConfig::default()
    };
    let sim = |g: &dsn::core::Graph| {
        let g = Arc::new(g.clone());
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let rate = cfg.packets_per_cycle_for_gbps(2.0);
        Simulator::new(g, cfg.clone(), routing, TrafficPattern::Uniform, rate, 7).run()
    };
    let [d64, t64, r64] = TopologySpec::paper_trio(64, seed);
    let l_dsn = sim(&d64.build().unwrap().graph);
    let l_torus = sim(&t64.build().unwrap().graph);
    let l_random = sim(&r64.build().unwrap().graph);
    card.check(
        "Fig 10: low-load latency DSN < torus, near RANDOM",
        l_dsn.avg_latency_ns < l_torus.avg_latency_ns
            && (l_dsn.avg_latency_ns - l_random.avg_latency_ns).abs()
                < 0.2 * l_random.avg_latency_ns,
        format!(
            "{:.0} ns vs torus {:.0} ns, random {:.0} ns",
            l_dsn.avg_latency_ns, l_torus.avg_latency_ns, l_random.avg_latency_ns
        ),
    );

    println!(
        "\n{} checks passed, {} failed (full-scale regenerators: cargo run -p dsn-bench --bin fig7_diameter, ...)",
        card.passed, card.failed
    );
    if card.failed > 0 {
        std::process::exit(1);
    }
}
