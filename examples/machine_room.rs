//! Machine-room deployment study: lay a topology out on the cabinet grid of
//! Section VI.B and break the cable bill down per link class — the analysis
//! a datacenter planner would run before committing to a topology.
//!
//! Run: `cargo run --release --example machine_room [n]`

use dsn::core::topology::TopologySpec;
use dsn::layout::{cable_stats, CableModel, FloorPlan, LinearPlacement};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1024);
    let p = dsn::core::util::ceil_log2(n);

    let model = CableModel::default();
    let placement = LinearPlacement::new(n, model.switches_per_cabinet);
    let cabinets = n.div_ceil(model.switches_per_cabinet);
    let plan = FloorPlan::new(cabinets);
    let (w, d) = plan.extent_m();
    println!(
        "floorplan for {n} switches: {cabinets} cabinets in a {} x {} grid, {w:.1} m x {d:.1} m floor\n",
        plan.rows(),
        plan.cols()
    );

    for spec in [
        TopologySpec::Dsn { n, x: p - 1 },
        TopologySpec::Torus2D { n },
        TopologySpec::DlnRandom {
            n,
            x: 2,
            y: 2,
            seed: 0xD5B0_2013,
        },
    ] {
        let built = spec.build().expect("topology");
        let stats = cable_stats(&built.graph, &placement, &model);
        println!(
            "{}: {} links, total {:.0} m, avg {:.2} m, max {:.1} m ({} intra-cabinet, {} inter)",
            built.name,
            stats.links,
            stats.total_m,
            stats.avg_m,
            stats.max_m,
            stats.intra_cabinet_links,
            stats.inter_cabinet_links
        );
        for (kind, ks) in &stats.by_kind {
            println!(
                "    {:<18} {:>6} links, avg {:>6.2} m, total {:>8.0} m",
                kind.to_string(),
                ks.links,
                ks.avg_m,
                ks.total_m
            );
        }
        println!();
    }

    println!("(cable model: 2 m intra-cabinet, Manhattan + 2 m overhead inter-cabinet,\n 16 switches per 0.6 m x 2.1 m cabinet — Section VI.B of the paper)");
}
