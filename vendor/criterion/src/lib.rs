//! Offline vendored subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the slice of criterion its benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `sample_size`, and `Bencher::iter`.
//!
//! Instead of criterion's statistical machinery this harness warms each
//! benchmark up, auto-scales the per-sample iteration count to a ~25 ms
//! window, takes `sample_size` samples, and prints min / median / mean
//! wall-clock time per iteration. Good enough for A/B speedup checks
//! (e.g. the serial-vs-parallel `routing_stats` comparison); not a
//! replacement for real criterion's confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a `Display`able parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the harness-chosen number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark registry; handed to the functions listed in `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark `f` with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// End the group (upstream flushes reports here; this harness prints
    /// per-benchmark, so it's a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Warm up, auto-scale iterations to the target sample window, then take
/// `sample_size` timed samples and print a one-line summary.
fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibrate: grow the iteration count until one sample takes long
    // enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (TARGET_SAMPLE_TIME.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut per_iter: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed / iters as u32);
    }
    per_iter.sort_unstable();
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
    println!(
        "{label:<50} min {min:>12?}  median {median:>12?}  mean {mean:>12?}  ({sample_size} samples x {iters} iters)"
    );
}

/// Declare a benchmark group: `criterion_group!(benches, fn_a, fn_b);`
/// expands to a `benches()` function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip the
            // timing loops there and only benchmark under `cargo bench`.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("bfs", 64).to_string(), "bfs/64");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn groups_run_their_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut hits = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                hits += 1;
            })
        });
        group.finish();
        assert!(hits > 0);
    }
}
