//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the slice of proptest its test suites use: [`Strategy`] over integer
//! ranges, tuples, `prop_map`, `prop_oneof!`, `collection::vec`, the
//! `proptest!` macro with `ProptestConfig::with_cases`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, on purpose:
//!
//! * **Deterministic**: cases are drawn from a SplitMix64 stream seeded by
//!   `FNV(test name) + attempt index`, so every run explores the same
//!   inputs — failures are reproducible without a persistence file.
//! * **No shrinking**: a failing case reports the drawn value verbatim.
//!   Minimal counterexamples get pinned as plain `#[test]`s instead (see
//!   `tests/regression_pins.rs` in the workspace root).
//! * **`.proptest-regressions` files are not consumed.** The checked-in
//!   files are kept for upstream-proptest compatibility, and each recorded
//!   failure is mirrored by a deterministic pinned test.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// RNG handed to strategies.
pub type TestRng = SmallRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The drawn input was rejected by `prop_assume!`; the runner retries
    /// with a fresh draw and does not count the case.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the only knob this subset honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<F, R>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erase, for heterogeneous unions (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `prop_map` adaptor.
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, R> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;

    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0usize..self.options.len());
        self.options[i].generate(rng)
    }
}

/// FNV-1a over the test name: stable per-test RNG stream base.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drive `config.cases` successful cases of `body` over draws from
/// `strategy`. Rejected draws (via `prop_assume!`) retry without counting,
/// up to a global attempt cap. Panics with the drawn value on failure.
pub fn run_cases<S, F>(config: ProptestConfig, name: &str, strategy: &S, mut body: F)
where
    S: Strategy,
    S::Value: std::fmt::Debug + Clone,
    F: FnMut(S::Value) -> TestCaseResult,
{
    let base = name_seed(name);
    let mut passed = 0u32;
    let mut attempt = 0u64;
    let max_attempts = (config.cases as u64).saturating_mul(20).max(1000);
    while passed < config.cases {
        attempt += 1;
        assert!(
            attempt <= max_attempts,
            "proptest '{name}': too many rejected draws ({attempt} attempts for {passed} cases)"
        );
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(attempt));
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        match body(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at attempt {attempt}\n  input: {shown}\n  {msg}");
            }
        }
    }
}

/// `proptest::prelude` equivalent.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Define property tests. Mirrors upstream's surface for the forms this
/// workspace uses (leading `#![proptest_config(..)]`, `pat in strategy`
/// parameter lists, bodies returning `()` with early `return Ok(())`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_cases(config, stringify!($name), &strategy, |value| {
                let ($($arg,)+) = value;
                let result: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                result
            });
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice over strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Fallible assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` ({}:{})\n  both: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` ({}:{}): {}\n  both: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), l
            )));
        }
    }};
}

/// Reject the current draw; the runner retries without counting the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_draws() {
        let strat = (0usize..100).prop_map(|v| v * 2);
        let mut a = crate::TestRng::seed_from_u64(1);
        let mut b = crate::TestRng::seed_from_u64(1);
        use rand::SeedableRng;
        assert_eq!(
            crate::Strategy::generate(&strat, &mut a),
            crate::Strategy::generate(&strat, &mut b)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 5usize..10, b in 0u32..3) {
            prop_assert!((5..10).contains(&a));
            prop_assert!(b < 3);
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            (0usize..5).prop_map(|x| x * 10),
            (100usize..105).prop_map(|x| x),
        ]) {
            prop_assert!(v < 50 || (100..105).contains(&v), "v = {v}");
        }

        #[test]
        fn assume_rejects(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn early_return_ok_allowed(n in 0usize..10) {
            if n > 5 {
                return Ok(());
            }
            prop_assert!(n <= 5);
        }

        #[test]
        fn vec_strategy_in_bounds(v in crate::collection::vec((0usize..7, 0usize..7), 0..12)) {
            prop_assert!(v.len() < 12);
            for (a, b) in v {
                prop_assert!(a < 7 && b < 7);
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failure_panics_with_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(n in 0usize..10) {
                prop_assert!(n > 100, "n was {n}");
            }
        }
        always_fails();
    }
}
