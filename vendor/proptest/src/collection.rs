//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::Range;

/// Strategy producing a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
