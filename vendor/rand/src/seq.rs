//! Sequence helpers (`rand::seq` subset).

use crate::Rng;

/// Extension trait adding in-place shuffling to slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle, identical element set, uniformly random order.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0usize..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0usize..self.len())])
        }
    }
}
