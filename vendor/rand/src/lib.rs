//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `rand` it actually uses: the [`Rng`] /
//! [`SeedableRng`] traits, [`rngs::SmallRng`] (xoshiro256++ seeded via
//! SplitMix64, the same generator rand 0.8 uses on 64-bit targets),
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates), and
//! [`distributions::WeightedIndex`].
//!
//! Determinism contract: for a fixed seed every method produces the same
//! stream on every platform and thread count. Nothing here is
//! cryptographically secure — simulation use only.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Types that can construct themselves from a seed. Mirrors
/// `rand_core::SeedableRng` for the subset the workspace uses.
pub trait SeedableRng: Sized {
    /// Seed a generator from a single `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// A source of randomness. Mirrors the `rand 0.8` `Rng`/`RngCore` surface
/// the workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (high half of [`Rng::next_u64`]).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[range.start, range.end)` via Lemire's unbiased
    /// widening-multiply rejection method.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 63-bit integer comparison: exact enough for simulation and
        // deterministic across platforms (no float rounding in the hot path).
        let threshold = (p * (1u64 << 63) as f64) as u64;
        (self.next_u64() >> 1) < threshold
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Draw a uniform value from `range`.
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32, u16, u8, i64, i32);

/// Unbiased uniform draw in `[0, span)` for `span >= 1` (Lemire).
fn uniform_u64<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            // Rejection zone cleared: the high word is unbiased.
            return (m >> 64) as u64;
        }
    }
}

/// `rand::prelude`-style convenience re-exports.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }
}
