//! Distribution sampling (`rand::distributions` subset).

use crate::Rng;

/// A sampling distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`WeightedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight list was empty.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// Every weight was zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no items to sample from"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..weights.len()` proportionally to the weights, via
/// binary search over the cumulative-sum table.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from a slice of non-negative finite weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<f64>,
    {
        use std::borrow::Borrow;
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let x = rng.gen_f64() * self.total;
        // First index whose cumulative sum exceeds x; partition_point keeps
        // zero-weight entries unreachable (their cumsum equals the
        // predecessor's, so `<= x` skips them).
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        assert_eq!(
            WeightedIndex::new(Vec::<f64>::new()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
        assert_eq!(
            WeightedIndex::new([1.0, -2.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
    }

    #[test]
    fn respects_weights() {
        let dist = WeightedIndex::new([1.0, 0.0, 3.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(17);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight index sampled");
        assert!(counts[2] > 2 * counts[0], "weights ignored: {counts:?}");
    }
}
