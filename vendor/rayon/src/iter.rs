//! Indexed parallel iterators.
//!
//! Sources (ranges, slices) know their length and can produce the item at
//! any index; adaptors (`map`, `map_init`) wrap them. Consuming methods
//! hand contiguous index chunks to scoped worker threads through an atomic
//! cursor, then reassemble results **in index order** before any folding,
//! which makes every consumer deterministic in the worker count.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An indexed parallel iterator: the vendored subset of rayon's trait.
pub trait ParallelIterator: Sized + Sync {
    /// Item produced per index.
    type Item: Send;
    /// Per-worker scratch state (`map_init`'s init value lives here).
    type Scratch;

    /// Total number of items.
    #[doc(hidden)]
    fn pi_len(&self) -> usize;

    /// Fresh per-worker scratch.
    #[doc(hidden)]
    fn pi_scratch(&self) -> Self::Scratch;

    /// Produce the item at `index`.
    #[doc(hidden)]
    fn pi_get(&self, scratch: &mut Self::Scratch, index: usize) -> Self::Item;

    /// Transform each item with `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { inner: self, f }
    }

    /// Like `map`, with per-worker mutable state built by `init` (rayon's
    /// `map_init`): `f` receives `&mut state` plus the item.
    fn map_init<INIT, T, F, R>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, Self::Item) -> R + Sync,
        R: Send,
    {
        MapInit {
            inner: self,
            init,
            f,
        }
    }

    /// Run `f` on every item (order of side effects unspecified).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive_discard(&self, &f);
    }

    /// Collect into `C`, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_ordered_vec(drive(&self))
    }

    /// Sum the items, folding in index order (bit-deterministic for floats).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        drive(&self).into_iter().sum()
    }

    /// Reduce with `op` starting from `identity()`, folding in index order.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        OP: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        drive(&self).into_iter().fold(identity(), op)
    }

    /// Greatest item, folding in index order.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(&self).into_iter().max()
    }

    /// Number of items.
    fn count(self) -> usize {
        self.pi_len()
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;

    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` on collections, yielding `&T`.
pub trait IntoParallelRefIterator<'a> {
    /// Resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type (a shared reference).
    type Item: Send + 'a;

    /// Iterate by shared reference.
    fn par_iter(&'a self) -> Self::Iter;
}

/// `.par_iter_mut()` on collections, yielding `&mut T`.
///
/// The mutable side does not go through [`ParallelIterator`] (whose
/// `pi_get` hands out items from `&self`); it yields disjoint `&mut`
/// chunks to scoped workers directly, so it stays safe code.
pub trait IntoParallelRefMutIterator<'a> {
    /// Resulting iterator.
    type Iter;
    /// Item type (a mutable reference).
    type Item: Send + 'a;

    /// Iterate by mutable reference.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

/// Parallel iterator over a mutable slice, yielding `&mut T`.
#[derive(Debug)]
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> SliceIterMut<'a, T> {
    /// Run `f` on every item (order of side effects unspecified; each item
    /// is visited exactly once, by exactly one worker).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let len = self.slice.len();
        let threads = crate::current_num_threads().min(len.max(1));
        if threads <= 1 || len <= 1 {
            for item in self.slice {
                f(item);
            }
            return;
        }
        let chunk = len.div_ceil(threads);
        let f = &f;
        std::thread::scope(|s| {
            for part in self.slice.chunks_mut(chunk) {
                s.spawn(move || {
                    for item in part {
                        f(item);
                    }
                });
            }
        });
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = SliceIterMut<'a, T>;
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = SliceIterMut<'a, T>;
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

/// Collections buildable from an ordered item vector.
pub trait FromParallelIterator<T> {
    /// Build from items already in index order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

// ---------------------------------------------------------------- sources

/// Parallel iterator over `Range<usize>`.
#[derive(Debug, Clone)]
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    type Scratch = ();

    fn pi_len(&self) -> usize {
        self.len
    }

    fn pi_scratch(&self) {}

    fn pi_get(&self, _: &mut (), index: usize) -> usize {
        self.start + index
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// Parallel iterator over `Range<u32>`.
#[derive(Debug, Clone)]
pub struct RangeIterU32 {
    start: u32,
    len: usize,
}

impl ParallelIterator for RangeIterU32 {
    type Item = u32;
    type Scratch = ();

    fn pi_len(&self) -> usize {
        self.len
    }

    fn pi_scratch(&self) {}

    fn pi_get(&self, _: &mut (), index: usize) -> u32 {
        self.start + index as u32
    }
}

impl IntoParallelIterator for Range<u32> {
    type Iter = RangeIterU32;
    type Item = u32;

    fn into_par_iter(self) -> RangeIterU32 {
        RangeIterU32 {
            start: self.start,
            len: (self.end.saturating_sub(self.start)) as usize,
        }
    }
}

/// Parallel iterator over a slice, yielding `&T`.
#[derive(Debug)]
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    type Scratch = ();

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_scratch(&self) {}

    fn pi_get(&self, _: &mut (), index: usize) -> &'a T {
        &self.slice[index]
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

// --------------------------------------------------------------- adaptors

/// `map` adaptor.
#[derive(Debug)]
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    type Scratch = I::Scratch;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn pi_scratch(&self) -> I::Scratch {
        self.inner.pi_scratch()
    }

    fn pi_get(&self, scratch: &mut I::Scratch, index: usize) -> R {
        (self.f)(self.inner.pi_get(scratch, index))
    }
}

/// `map_init` adaptor: worker-local state threaded through the scratch.
#[derive(Debug)]
pub struct MapInit<I, INIT, F> {
    inner: I,
    init: INIT,
    f: F,
}

/// Scratch for [`MapInit`]: inner scratch + lazily created init value.
pub struct MapInitScratch<S, T> {
    inner: S,
    state: Option<T>,
}

impl<I, INIT, T, F, R> ParallelIterator for MapInit<I, INIT, F>
where
    I: ParallelIterator,
    INIT: Fn() -> T + Sync,
    F: Fn(&mut T, I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    type Scratch = MapInitScratch<I::Scratch, T>;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn pi_scratch(&self) -> Self::Scratch {
        MapInitScratch {
            inner: self.inner.pi_scratch(),
            state: None,
        }
    }

    fn pi_get(&self, scratch: &mut Self::Scratch, index: usize) -> R {
        let item = self.inner.pi_get(&mut scratch.inner, index);
        let state = scratch.state.get_or_insert_with(&self.init);
        (self.f)(state, item)
    }
}

// ----------------------------------------------------------------- driver

/// Materialize every item in index order, fanning the work out over
/// scoped threads pulling chunks from an atomic cursor.
fn drive<P: ParallelIterator>(p: &P) -> Vec<P::Item> {
    let len = p.pi_len();
    let threads = crate::current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        let mut scratch = p.pi_scratch();
        return (0..len).map(|i| p.pi_get(&mut scratch, i)).collect();
    }
    // Small chunks for load balance; at least 1, at most len.
    let chunk = (len / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<(usize, Vec<P::Item>)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out: Vec<(usize, Vec<P::Item>)> = Vec::new();
                    let mut scratch = p.pi_scratch();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + chunk).min(len);
                        let mut items = Vec::with_capacity(end - start);
                        for i in start..end {
                            items.push(p.pi_get(&mut scratch, i));
                        }
                        out.push((start, items));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            parts.extend(h.join().expect("parallel worker panicked"));
        }
    });
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut result = Vec::with_capacity(len);
    for (_, items) in parts {
        result.extend(items);
    }
    result
}

/// Run the pipeline for side effects only, without materializing items.
fn drive_discard<P, F>(p: &P, f: &F)
where
    P: ParallelIterator,
    F: Fn(P::Item) + Sync,
{
    let len = p.pi_len();
    let threads = crate::current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        let mut scratch = p.pi_scratch();
        for i in 0..len {
            f(p.pi_get(&mut scratch, i));
        }
        return;
    }
    let chunk = (len / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut scratch = p.pi_scratch();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + chunk).min(len);
                        for i in start..end {
                            f(p.pi_get(&mut scratch, i));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("parallel worker panicked");
        }
    });
}
