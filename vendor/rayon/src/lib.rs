//! Offline vendored subset of the `rayon` API.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the slice of rayon it uses: indexed parallel iterators over ranges and
//! slices with `map` / `map_init` / `for_each` / `sum` / `reduce` /
//! `collect`, fanned out over `std::thread::scope` workers that pull
//! contiguous index chunks from a shared atomic cursor.
//!
//! **Determinism discipline.** Every consuming adaptor first materializes
//! items in index order and then folds them sequentially, so `sum`,
//! `reduce` and `collect` return *bit-identical* results regardless of the
//! worker count — including `RAYON_NUM_THREADS=1`. This is a deliberate
//! contract the analysis crates rely on (serial/parallel equivalence
//! tests); upstream rayon only promises it for `collect`.
//!
//! Thread count resolution order:
//! 1. [`ThreadPoolBuilder::num_threads`] + [`ThreadPoolBuilder::build_global`]
//! 2. the `RAYON_NUM_THREADS` environment variable
//! 3. `std::thread::available_parallelism()`

use std::sync::atomic::{AtomicUsize, Ordering};

mod iter;

pub use iter::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
};

/// `rayon::prelude` equivalent: glob-import the iterator traits.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// Global worker-count override installed by [`ThreadPoolBuilder::build_global`].
/// 0 = not set.
static GLOBAL_NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The number of worker threads parallel iterators will use.
pub fn current_num_threads() -> usize {
    let global = GLOBAL_NUM_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error from [`ThreadPoolBuilder::build_global`] (never produced here;
/// kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build global thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global worker count, mirroring rayon's builder API.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use exactly `n` workers (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally. Unlike upstream rayon this may
    /// be called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_NUM_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Run `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data: Vec<u64> = (0..257).collect();
        let doubled: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(doubled, (1..258).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_serial() {
        let par: f64 = (0..10_000usize)
            .into_par_iter()
            .map(|i| (i as f64).sqrt())
            .sum();
        let ser: f64 = (0..10_000usize).map(|i| (i as f64).sqrt()).sum();
        assert_eq!(par.to_bits(), ser.to_bits(), "sum must fold in index order");
    }

    #[test]
    fn map_init_gets_per_thread_state() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .map_init(Vec::<u8>::new, |scratch, i| {
                scratch.push(1);
                i + scratch.capacity().min(1)
            })
            .collect();
        assert_eq!(out, (1..101).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_is_deterministic() {
        let r = (1..=100u64)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&x| x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 5050);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn empty_input() {
        let v: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let s: u64 = Vec::<u64>::new().par_iter().map(|&x| x).sum();
        assert_eq!(s, 0);
    }

    #[test]
    fn par_iter_mut_mutates_every_item_once() {
        let mut data: Vec<u64> = (0..257).collect();
        data.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(data, (1..258).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0..500usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }
}
